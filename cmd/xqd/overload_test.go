package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/par/leaktest"
	"repro/internal/store"
)

// runawayQuery never converges: the recursion body constructs fresh nodes
// every round, so only a budget can end it.
const runawayQuery = `count(with $x seeded by <a/> recurse <b/>)`

func postQuery(t *testing.T, base string, body string) (*http.Response, errorResponse) {
	t.Helper()
	resp, err := http.Post(base+"/query", "application/xquery", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	decodeBody(t, resp, &e)
	return resp, e
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestBodyTooLarge: a POST body over -max-body must be a 413 with the
// typed code, never a silently truncated (and then misparsed) query.
func TestBodyTooLarge(t *testing.T) {
	_, hs := testServer(t, store.Options{}, func(s *server) { s.maxBody = 64 })
	big := "count((" + strings.Repeat("1,", 200) + "1))"
	resp, e := postQuery(t, hs.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%+v)", resp.StatusCode, e)
	}
	if e.Code != codeBodyTooLarge {
		t.Fatalf("code %q, want %q", e.Code, codeBodyTooLarge)
	}
	// A body exactly at the limit still evaluates.
	small := "count((1,2,3))"
	if len(small) > 64 {
		t.Fatal("fixture error")
	}
	resp2, err := http.Post(hs.URL+"/query", "application/xquery", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	var q queryResponse
	decodeBody(t, resp2, &q)
	if resp2.StatusCode != http.StatusOK || q.Result != "3" {
		t.Fatalf("small body: status %d result %q", resp2.StatusCode, q.Result)
	}
}

// TestParamValidation: negative ?p= is a 400; an absurd ?p= is capped at
// the server's max-p and still answers byte-identically.
func TestParamValidation(t *testing.T) {
	_, hs := testServer(t, store.Options{}, func(s *server) { s.maxP = 2 })
	q := url.QueryEscape(fixpointQuery)

	var e errorResponse
	if code := getJSON(t, hs.URL+"/query?p=-1&q="+q, &e); code != http.StatusBadRequest {
		t.Fatalf("p=-1: status %d, want 400", code)
	}
	if code := getJSON(t, hs.URL+"/query?timeout_ms=0&q="+q, &e); code != http.StatusBadRequest {
		t.Fatalf("timeout_ms=0: status %d, want 400", code)
	}
	if code := getJSON(t, hs.URL+"/query?timeout_ms=abc&q="+q, &e); code != http.StatusBadRequest {
		t.Fatalf("timeout_ms=abc: status %d, want 400", code)
	}

	var base, capped queryResponse
	if code := getJSON(t, hs.URL+"/query?p=1&q="+q, &base); code != http.StatusOK {
		t.Fatalf("p=1: status %d", code)
	}
	if code := getJSON(t, hs.URL+"/query?p=4096&q="+q, &capped); code != http.StatusOK {
		t.Fatalf("p=4096: status %d, want 200 (capped at max-p)", code)
	}
	if capped.Result != base.Result {
		t.Fatalf("capped-p result diverges: %q vs %q", capped.Result, base.Result)
	}
}

// TestDeadlineTruncation: a runaway query under ?timeout_ms= comes back
// as a 422 with the typed deadline code and partial fixpoint stats, the
// timeout counter moves, and no evaluation goroutines leak. Run under -race.
func TestDeadlineTruncation(t *testing.T) {
	srv, hs := testServer(t, store.Options{})
	before := runtime.NumGoroutine()

	var e errorResponse
	code := getJSON(t, hs.URL+"/query?timeout_ms=100&p=3&q="+url.QueryEscape(runawayQuery), &e)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%+v)", code, e)
	}
	if e.Code != "IFPX0002" {
		t.Fatalf("code %q, want IFPX0002", e.Code)
	}
	if n := srv.snapshot().Timeouts; n != 1 {
		t.Fatalf("timeouts counter = %d, want 1", n)
	}
	// The server must still answer ordinary queries afterwards.
	var q queryResponse
	if code := getJSON(t, hs.URL+"/query?q="+url.QueryEscape(fixpointQuery), &q); code != http.StatusOK {
		t.Fatalf("follow-up query: status %d", code)
	}
	// Drop keep-alive connections so the leak check sees evaluation
	// goroutines, not idle HTTP plumbing.
	http.DefaultClient.CloseIdleConnections()
	leaktest.Wait(t, before)
}

// TestRowBudgetTruncation: a server-wide -max-rows budget truncates with
// the typed rows code on both engines.
func TestRowBudgetTruncation(t *testing.T) {
	_, hs := testServer(t, store.Options{}, func(s *server) { s.maxRows = 3 })
	for _, engine := range []string{"interp", "rel"} {
		var e errorResponse
		code := getJSON(t, hs.URL+"/query?engine="+engine+"&q="+url.QueryEscape(fixpointQuery), &e)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422 (%+v)", engine, code, e)
		}
		if e.Code != "IFPX0004" {
			t.Fatalf("%s: code %q, want IFPX0004", engine, e.Code)
		}
	}
}

// holdSlot fires a runaway query that occupies one admission slot for
// roughly ms milliseconds and returns a channel that closes when it ends.
func holdSlot(t *testing.T, base string, ms int) chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(fmt.Sprintf("%s/query?p=1&timeout_ms=%d&q=%s", base, ms, url.QueryEscape(runawayQuery)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	return done
}

func healthCode(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitInflight(t *testing.T, srv *server, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.ctrl.Stats().InFlight >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("admission never reached %d in-flight", n)
}

// TestShedAndHealth: with capacity 1 and no queue, a second concurrent
// query is shed with 429 + Retry-After and the typed code, /healthz
// degrades to 503 while saturated, and both recover once the slot frees.
func TestShedAndHealth(t *testing.T) {
	srv, hs := testServer(t, store.Options{}, func(s *server) {
		s.ctrl = admission.New(admission.Options{Capacity: 1, QueueLimit: 0})
	})

	if code := healthCode(t, hs.URL); code != http.StatusOK {
		t.Fatalf("healthz before load: %d", code)
	}

	done := holdSlot(t, hs.URL, 600)
	waitInflight(t, srv, 1)

	resp, err := http.Get(hs.URL + "/query?q=" + url.QueryEscape("1+1"))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	ra := resp.Header.Get("Retry-After")
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, e)
	}
	if e.Code != codeShed {
		t.Fatalf("code %q, want %q", e.Code, codeShed)
	}
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if code := healthCode(t, hs.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz under saturation: %d, want 503", code)
	}

	<-done
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if healthCode(t, hs.URL) == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var q queryResponse
	if code := getJSON(t, hs.URL+"/query?q="+url.QueryEscape("1+1"), &q); code != http.StatusOK {
		t.Fatalf("query after recovery: status %d", code)
	}
	st := srv.ctrl.Stats()
	if st.Shed == 0 {
		t.Fatalf("admission stats show no shed: %+v", st)
	}
}

// TestQueueTimeout: with capacity 1 and a short queue deadline, a queued
// request is rejected with 429 and the queue-timeout code rather than
// waiting forever.
func TestQueueTimeout(t *testing.T) {
	srv, hs := testServer(t, store.Options{}, func(s *server) {
		s.ctrl = admission.New(admission.Options{Capacity: 1, QueueLimit: 4, QueueTimeout: 50 * time.Millisecond})
	})
	done := holdSlot(t, hs.URL, 800)
	waitInflight(t, srv, 1)

	resp, err := http.Get(hs.URL + "/query?q=" + url.QueryEscape("1+1"))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, e)
	}
	if e.Code != codeQueueTimeout {
		t.Fatalf("code %q, want %q", e.Code, codeQueueTimeout)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-done
	if st := srv.ctrl.Stats(); st.TimedOut == 0 {
		t.Fatalf("admission stats show no queue timeout: %+v", st)
	}
}

// TestClientDisconnectDrains: clients that give up mid-query (while
// admitted or while queued) must not leak goroutines or capacity. Run
// under -race.
func TestClientDisconnectDrains(t *testing.T) {
	srv, hs := testServer(t, store.Options{}, func(s *server) {
		s.ctrl = admission.New(admission.Options{Capacity: 1, QueueLimit: 8, QueueTimeout: 5 * time.Second})
	})
	before := runtime.NumGoroutine()

	// One admitted runaway and two queued requests, all abandoned.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
			hs.URL+"/query?timeout_ms=5000&q="+url.QueryEscape(runawayQuery), nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}

	// Capacity must be whole again: a normal query goes straight through.
	deadline := time.Now().Add(3 * time.Second)
	for {
		var q queryResponse
		if code := getJSON(t, hs.URL+"/query?q="+url.QueryEscape("1+1"), &q); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never recovered after disconnects: %+v", srv.ctrl.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	http.DefaultClient.CloseIdleConnections()
	leaktest.Wait(t, before)
}

// TestPanicRecovery: a panicking handler is a 500 with the typed code and
// a counter tick — the process and other endpoints keep working.
func TestPanicRecovery(t *testing.T) {
	srv, hs := testServer(t, store.Options{}, func(s *server) {
		s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("boom") })
	})
	resp, err := http.Get(hs.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if e.Code != codePanic {
		t.Fatalf("code %q, want %q", e.Code, codePanic)
	}
	if n := srv.snapshot().Panics; n != 1 {
		t.Fatalf("panics counter = %d, want 1", n)
	}
	var q queryResponse
	if code := getJSON(t, hs.URL+"/query?q="+url.QueryEscape("1+1"), &q); code != http.StatusOK {
		t.Fatalf("query after panic: status %d", code)
	}
}

// TestHealthzDraining: the draining flag flips /healthz to 503 so load
// balancers stop routing before shutdown completes.
func TestHealthzDraining(t *testing.T) {
	srv, hs := testServer(t, store.Options{})
	srv.draining.Store(true)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	var stats statsResponse
	getJSON(t, hs.URL+"/stats", &stats)
	if !stats.Draining {
		t.Fatal("/stats does not report draining")
	}
}
