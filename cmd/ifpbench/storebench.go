package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	ifpxq "repro"
	"repro/internal/store"
	"repro/internal/xdm"
	"repro/internal/xmldoc"
	"repro/internal/xmlgen"
)

// storeWorkload is one document-open benchmark subject: the Table 2
// document at the harness's default scale, plus (optionally) a fixpoint
// query measured cold (snapshot loaded inside the timed region) and warm
// (cache hit, document load excluded).
type storeWorkload struct {
	id    string
	uri   string
	query string
	gen   func() string
}

func storeWorkloads() []storeWorkload {
	return []storeWorkload{
		{"T2.1", "auction.xml", "", func() string { return xmlgen.Auction(xmlgen.FromScale(0.001)) }},
		{"T2.5", "play.xml", "", func() string { return xmlgen.Play(xmlgen.PlaySized()) }},
		{"T2.6", "curriculum.xml", `
for $c in doc("curriculum.xml")/curriculum/course
where exists($c intersect (with $x seeded by $c recurse $x/id(./prerequisites/pre_code)))
return $c/@code/string()`,
			func() string { return xmlgen.Curriculum(xmlgen.CurriculumSized(400)) }},
		// The hospital pair is the crisp cold-vs-warm demonstration: its
		// fixpoint evaluation is cheap relative to the 30+ ms cold parse
		// (and ~5 ms snapshot load), so the warm-cache cell shows query
		// latency with document load excluded entirely.
		{"T2.8", "hospital.xml", `
count(with $x seeded by doc("hospital.xml")/hospital/patient[diagnosis = "hd"]
recurse $x/parents/patient[diagnosis = "hd"])`,
			func() string { return xmlgen.Hospital(xmlgen.HospitalSized(10000)) }},
	}
}

// storeSink keeps benchmark results alive so document opens are not
// optimized away.
var storeSink *xdm.Document

// runStoreBench measures, for every workload, the three document open
// paths — cold XML parse, snapshot read, mmap open — and for workloads
// with a query the end-to-end latency with a cold vs. warm document
// cache. With jsonPath it appends the cells to a BENCH_<n>.json-style
// snapshot; otherwise it prints a table with speedups over cold parse.
func runStoreBench(jsonPath string) error {
	dir, err := os.MkdirTemp("", "ifpbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	out := newBenchFile()
	table := [][3]string{{"cell", "ns/op", "vs parse"}}

	for _, w := range storeWorkloads() {
		fmt.Fprintf(os.Stderr, "preparing %s (%s)…\n", w.id, w.uri)
		xml := w.gen()
		doc, err := xmldoc.ParseString(xml, w.uri)
		if err != nil {
			return fmt.Errorf("%s: %w", w.id, err)
		}
		snapPath := filepath.Join(dir, w.uri+store.Ext)
		if err := store.Save(snapPath, doc); err != nil {
			return fmt.Errorf("%s: %w", w.id, err)
		}
		st, err := os.Stat(snapPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  XML %d KiB, snapshot %d KiB, %d nodes\n",
			len(xml)/1024, st.Size()/1024, doc.Len())

		cells := []struct {
			name string
			fn   func() (*xdm.Document, error)
		}{
			{"parse", func() (*xdm.Document, error) { return xmldoc.ParseString(xml, w.uri) }},
			{"load", func() (*xdm.Document, error) { return store.Load(snapPath) }},
			{"mmap", func() (*xdm.Document, error) { return store.LoadMmap(snapPath) }},
		}
		var parseNs float64
		for _, cell := range cells {
			name := fmt.Sprintf("store/%s/%s/%s", w.id, w.uri, cell.name)
			fmt.Fprintf(os.Stderr, "measuring %s…\n", name)
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := cell.fn()
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					storeSink = d
				}
			})
			if benchErr != nil {
				return fmt.Errorf("%s: %w", name, benchErr)
			}
			ns := float64(res.NsPerOp())
			if cell.name == "parse" {
				parseNs = ns
			}
			out.Entries = append(out.Entries, BenchEntry{
				Name: name, Phase: "store", NsOp: ns,
				BytesOp: res.AllocedBytesPerOp(), AllocsOp: res.AllocsPerOp(),
			})
			table = append(table, tableRow(name, ns, parseNs))
		}

		if w.query == "" {
			continue
		}
		q, err := ifpxq.Parse(w.query)
		if err != nil {
			return fmt.Errorf("%s query: %w", w.id, err)
		}
		queryCells := []struct {
			name string
			fn   func(b *testing.B) error
		}{
			// Cold: a fresh cache every iteration, so each evaluation
			// pays the snapshot load.
			{"query-cold", func(b *testing.B) error {
				for i := 0; i < b.N; i++ {
					cold, err := ifpxq.OpenStore(ifpxq.StoreOptions{Dir: dir})
					if err != nil {
						return err
					}
					if _, err := q.Eval(ifpxq.Options{Store: cold}); err != nil {
						return err
					}
				}
				return nil
			}},
			// Warm: one shared pre-warmed cache — document load is
			// entirely excluded from the measured latency.
			{"query-warm", func(b *testing.B) error {
				warm, err := ifpxq.OpenStore(ifpxq.StoreOptions{Dir: dir})
				if err != nil {
					return err
				}
				if _, err := q.Eval(ifpxq.Options{Store: warm}); err != nil {
					return err
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(ifpxq.Options{Store: warm}); err != nil {
						return err
					}
				}
				return nil
			}},
		}
		for _, cell := range queryCells {
			name := fmt.Sprintf("store/%s/%s/%s", w.id, w.uri, cell.name)
			fmt.Fprintf(os.Stderr, "measuring %s…\n", name)
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				if err := cell.fn(b); err != nil {
					benchErr = err
					b.FailNow()
				}
			})
			if benchErr != nil {
				return fmt.Errorf("%s: %w", name, benchErr)
			}
			out.Entries = append(out.Entries, BenchEntry{
				Name: name, Phase: "store", NsOp: float64(res.NsPerOp()),
				BytesOp: res.AllocedBytesPerOp(), AllocsOp: res.AllocsPerOp(),
			})
			table = append(table, tableRow(name, float64(res.NsPerOp()), 0))
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
	}
	for _, row := range table {
		fmt.Printf("%-40s %15s %10s\n", row[0], row[1], row[2])
	}
	return nil
}

func tableRow(name string, ns, parseNs float64) [3]string {
	speedup := ""
	if parseNs > 0 && ns > 0 {
		speedup = fmt.Sprintf("%.1fx", parseNs/ns)
	}
	return [3]string{name, fmt.Sprintf("%.0f", ns), speedup}
}
