// Cache sweep: every cell measured through the public ifpxq entry points
// with the plan and result caches off and on (entries suffixed /cache=N),
// so a snapshot records what the caching layer buys per (experiment,
// engine, algorithm) cell. cache=0 evaluates from scratch each iteration
// — the same work xqd does for a novel query — while cache=1 shares one
// warm PlanCache and ResultCache across iterations, the repeat-query
// serving path.
package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	ifpxq "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/xdm"
)

// writeCacheSweep measures each cell at cache=0 and cache=1 and writes
// one entry per (cell, cache setting).
func writeCacheSweep(path string, exps []bench.Experiment, parallelism int) error {
	if path == "" {
		return fmt.Errorf("-cache-sweep requires -json <file>")
	}
	out := newBenchFile()
	for _, e := range exps {
		entries, err := measureCacheCells(e, parallelism)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entries...)
	}
	return writeBenchFile(path, out)
}

// measureCacheCells benchmarks one experiment's four cells uncached and
// cached. The document is generated and parsed once for the whole sweep
// and served by an in-memory resolver, so the cells isolate the query
// pipeline (parse/compile/optimize/eval) rather than document I/O — the
// result cache's generation is pinned (nil store), matching documents
// that are immutable for the process lifetime.
func measureCacheCells(e bench.Experiment, parallelism int) ([]BenchEntry, error) {
	doc, err := ifpxq.ParseDocument(e.DocXML(), e.DocURI)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	docs := ifpxq.DocsFromDocuments(map[string]*xdm.Document{e.DocURI: doc})

	var entries []BenchEntry
	for _, cached := range []bool{false, true} {
		for _, engine := range []string{bench.EngineInterp, bench.EngineRelational} {
			for _, alg := range []core.Algorithm{core.Naive, core.Delta} {
				name := fmt.Sprintf("%s/%s/%s/%s/cache=%d", e.ID, e.Name, engine, alg, boolToInt(cached))
				fmt.Fprintf(os.Stderr, "measuring %s…\n", name)
				runtime.GC()
				runtime.GC()

				opts := ifpxq.Options{Docs: docs, Parallelism: parallelism}
				if engine == bench.EngineRelational {
					opts.Engine = ifpxq.EngineRelational
				}
				if alg == core.Delta {
					opts.Mode = ifpxq.ModeDelta
				} else {
					opts.Mode = ifpxq.ModeNaive
				}
				// One cache pair per cell, warmed before the timed region:
				// the measurement is the steady-state hit path, not the
				// first-miss amortization.
				var pc *ifpxq.PlanCache
				if cached {
					pc = ifpxq.NewPlanCache(16)
					opts.PlanCache = pc
					opts.ResultCache = ifpxq.NewResultCache(16, nil)
				}
				parse := func() (*ifpxq.Query, error) { return pc.Parse(e.Query) }
				if q, err := parse(); err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				} else if cached {
					if _, err := q.Eval(opts); err != nil {
						return nil, fmt.Errorf("%s warmup: %w", name, err)
					}
				}

				var fps []ifpxq.FixpointStats
				var runErr error
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						// Parsing is inside the timed region for both
						// settings: cache=0 pays it, cache=1 reuses the
						// parsed query, exactly as xqd's handler does.
						q, err := parse()
						if err == nil {
							var r *ifpxq.Result
							r, err = q.Eval(opts)
							if err == nil {
								fps = r.Fixpoints
							}
						}
						if err != nil {
							runErr = err
							b.FailNow()
						}
					}
				})
				if runErr != nil {
					return nil, fmt.Errorf("%s: %w", name, runErr)
				}
				if res.N == 0 {
					return nil, fmt.Errorf("%s: benchmark produced no measurement", name)
				}
				entry := BenchEntry{
					Name:     name,
					Phase:    "snapshot",
					NsOp:     float64(res.NsPerOp()),
					BytesOp:  res.AllocedBytesPerOp(),
					AllocsOp: res.AllocsPerOp(),
				}
				for _, fp := range fps {
					entry.NodesFed += fp.Stats.NodesFedBack
					if fp.Stats.Depth > entry.Depth {
						entry.Depth = fp.Stats.Depth
					}
				}
				entries = append(entries, entry)
			}
		}
	}
	return entries, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
