// Command ifpbench regenerates the paper's Table 2: Naïve vs. Delta
// evaluation times, total nodes fed back, and recursion depths for the
// four query families on both engines (direct interpreter = the Saxon
// column, relational pipeline = the MonetDB/XQuery column).
//
// Usage:
//
//	ifpbench                 # all Table 2 rows
//	ifpbench -exp T2.5       # one row
//	ifpbench -list           # list experiments
//	ifpbench -markdown       # EXPERIMENTS.md-style output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		expID    = flag.String("exp", "", "run a single experiment (id or name)")
		list     = flag.Bool("list", false, "list experiments")
		markdown = flag.Bool("markdown", false, "emit a markdown table")
	)
	flag.Parse()

	exps := bench.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-6s %s\n", e.ID, e.Name)
		}
		return
	}
	if *expID != "" {
		e, ok := bench.ExperimentByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ifpbench: unknown experiment %q\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	runner := &bench.Runner{}
	var rows []*bench.Row
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s %s…\n", e.ID, e.Name)
		start := time.Now()
		row, err := runner.Run(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  done in %v (document %d KiB)\n",
			time.Since(start).Round(time.Millisecond), row.DocBytes/1024)
		rows = append(rows, row)
	}
	if *markdown {
		writeMarkdown(rows)
		return
	}
	bench.WriteTable(os.Stdout, rows)
}

func writeMarkdown(rows []*bench.Row) {
	fmt.Println("| Query | Rel Naive | Rel Delta | Interp Naive | Interp Delta | Fed back (Naive) | Fed back (Delta) | Depth |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---:|---:|")
	for _, row := range rows {
		get := func(engine string, alg core.Algorithm) bench.Measurement {
			for _, m := range row.Measurements {
				if m.Engine == engine && m.Algorithm == alg {
					return m
				}
			}
			return bench.Measurement{}
		}
		rn, rd := get(bench.EngineRelational, core.Naive), get(bench.EngineRelational, core.Delta)
		in, id := get(bench.EngineInterp, core.Naive), get(bench.EngineInterp, core.Delta)
		depth := rn.Stats.Depth
		if in.Stats.Depth > depth {
			depth = in.Stats.Depth
		}
		fmt.Printf("| %s | %v | %v | %v | %v | %d | %d | %d |\n",
			row.Exp.Name,
			rn.Elapsed.Round(time.Millisecond), rd.Elapsed.Round(time.Millisecond),
			in.Elapsed.Round(time.Millisecond), id.Elapsed.Round(time.Millisecond),
			rn.Stats.NodesFedBack+in.Stats.NodesFedBack,
			rd.Stats.NodesFedBack+id.Stats.NodesFedBack,
			depth)
	}
}
