// Command ifpbench regenerates the paper's Table 2: Naïve vs. Delta
// evaluation times, total nodes fed back, and recursion depths for the
// four query families on both engines (direct interpreter = the Saxon
// column, relational pipeline = the MonetDB/XQuery column).
//
// Usage:
//
//	ifpbench                 # all Table 2 rows
//	ifpbench -exp T2.5       # one row
//	ifpbench -exp T2.1,T2.6  # a subset (the CI bench gate runs one)
//	ifpbench -list           # list experiments
//	ifpbench -markdown       # EXPERIMENTS.md-style output
//	ifpbench -json BENCH.json  # machine-readable snapshot (ns/op,
//	                           # allocs/op, nodes-fed per cell) so the
//	                           # perf trajectory is diffable across PRs
//	ifpbench -store            # document store benchmarks: cold XML parse
//	                           # vs snapshot read vs mmap open, plus
//	                           # cold- vs warm-cache query latency
//	ifpbench -store -json BENCH_2.json
//	ifpbench -p 4              # run with a 4-worker fixpoint pool
//	ifpbench -O 0              # run the relational cells on verbatim plans
//	ifpbench -opt-sweep -json BENCH_5.json
//	                           # every cell at -O0 and -O1 (…/O=N entries):
//	                           # what the plan-rewrite layer buys
//	ifpbench -parallel 1,2,4,8 -json BENCH_3.json
//	                           # worker-count sweep over the fixpoint
//	                           # workloads: one entry per (cell, p), names
//	                           # suffixed /p=N, so speedups are diffable
//	ifpbench -cache-sweep -json BENCH_8.json
//	                           # every cell uncached vs through warm plan
//	                           # and result caches (…/cache=N entries):
//	                           # what the caching layer buys on repeats
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		expID      = flag.String("exp", "", "run a single experiment (id or name)")
		list       = flag.Bool("list", false, "list experiments")
		markdown   = flag.Bool("markdown", false, "emit a markdown table")
		jsonPath   = flag.String("json", "", "write a machine-readable benchmark snapshot to this file")
		storeMode  = flag.Bool("store", false, "benchmark the document store open paths instead of Table 2")
		parallel   = flag.Int("p", 1, "fixpoint worker-pool width (0 = GOMAXPROCS)")
		sweep      = flag.String("parallel", "", "comma-separated worker counts to sweep (e.g. 1,2,4,8); writes one entry per (cell, p)")
		optLevel   = flag.Int("O", 1, "relational plan optimizer level (0 = verbatim plan, 1 = rewrite rules on)")
		optSweep   = flag.Bool("opt-sweep", false, "measure every cell at -O0 and -O1 (entries suffixed /O=N); requires -json")
		indexSweep = flag.Bool("index-sweep", false, "measure every cell with index probing off and on (entries suffixed /ix=N); requires -json")
		cacheSweep = flag.Bool("cache-sweep", false, "measure every cell uncached and through warm plan/result caches (entries suffixed /cache=N); requires -json")
	)
	flag.Parse()

	if *optLevel != 0 && *optLevel != 1 {
		fmt.Fprintf(os.Stderr, "ifpbench: unknown optimizer level -O%d (use 0 or 1)\n", *optLevel)
		os.Exit(2)
	}

	if *storeMode {
		if err := runStoreBench(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	exps := bench.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-6s %s\n", e.ID, e.Name)
		}
		return
	}
	if *expID != "" {
		exps = nil
		for _, id := range strings.Split(*expID, ",") {
			e, ok := bench.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ifpbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *cacheSweep {
		if *expID == "" {
			exps = sweepDefaults()
		}
		if err := writeCacheSweep(*jsonPath, exps, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *optSweep {
		if err := writeOptSweep(*jsonPath, exps, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *indexSweep {
		if err := writeIndexSweep(*jsonPath, exps, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *sweep != "" {
		counts, err := parseCounts(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(2)
		}
		if *expID == "" {
			exps = sweepDefaults()
		}
		if err := writeParallelSweep(*jsonPath, exps, counts, *optLevel == 0); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, exps, *parallel, *optLevel == 0); err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runner := &bench.Runner{Parallelism: *parallel, Opt0: *optLevel == 0}
	var rows []*bench.Row
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s %s…\n", e.ID, e.Name)
		start := time.Now()
		row, err := runner.Run(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ifpbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  done in %v (document %d KiB)\n",
			time.Since(start).Round(time.Millisecond), row.DocBytes/1024)
		rows = append(rows, row)
	}
	if *markdown {
		writeMarkdown(rows)
		return
	}
	bench.WriteTable(os.Stdout, rows)
}

// BenchEntry/BenchFile are the snapshot schema, shared (via internal/bench)
// with the checked-in BENCH_<n>.json trajectory files and the benchdiff
// regression gate.
type (
	BenchEntry = bench.Entry
	BenchFile  = bench.File
)

// writeJSON measures every (experiment, engine, algorithm) cell — each
// cell its own testing.Benchmark run, with document generation/parsing
// hoisted out of the timed region — and writes one entry per cell so
// snapshots are diffable against BENCH_<n>.json trajectory entries.
func writeJSON(path string, exps []bench.Experiment, parallelism int, opt0 bool) error {
	out := newBenchFile()
	cfg := measureConfig{counts: []int{parallelism}, optLevels: []int{1}}
	if opt0 {
		// Tag the entries: a verbatim-plan snapshot must never be
		// name-identical to (and silently diffable against) an optimized
		// one in the BENCH_<n>.json trajectory.
		cfg.optLevels, cfg.tagO = []int{0}, true
	}
	for _, e := range exps {
		entries, err := measureExperiment(e, cfg)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entries...)
	}
	return writeBenchFile(path, out)
}

// writeOptSweep measures each cell with the plan optimizer off and on
// (entries suffixed /O=0 and /O=1), so a snapshot records what the rewrite
// layer buys per (experiment, engine, algorithm) cell. Interpreter cells
// are measured once (tagged /O=1): the flag is a no-op without a plan.
func writeOptSweep(path string, exps []bench.Experiment, parallelism int) error {
	if path == "" {
		return fmt.Errorf("-opt-sweep requires -json <file>")
	}
	out := newBenchFile()
	cfg := measureConfig{counts: []int{parallelism}, optLevels: []int{0, 1}, tagO: true}
	for _, e := range exps {
		entries, err := measureExperiment(e, cfg)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entries...)
	}
	return writeBenchFile(path, out)
}

// writeIndexSweep measures each cell with the name-index probe path
// disabled (pure arena scans, /ix=0) and enabled (the production default,
// /ix=1), so a snapshot records what index probing buys per (experiment,
// engine, algorithm) cell. Interpreter cells never probe and are measured
// once, tagged /ix=1 as the default level.
func writeIndexSweep(path string, exps []bench.Experiment, parallelism int) error {
	if path == "" {
		return fmt.Errorf("-index-sweep requires -json <file>")
	}
	out := newBenchFile()
	cfg := measureConfig{counts: []int{parallelism}, optLevels: []int{1}, ixLevels: []int{0, 1}, tagIx: true}
	for _, e := range exps {
		entries, err := measureExperiment(e, cfg)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entries...)
	}
	return writeBenchFile(path, out)
}

// sweepDefaults is the worker-sweep experiment subset: the fixpoint
// workloads whose round internals dominate, with the larger bidder
// networks dropped to keep a full 1/2/4/8 sweep tractable.
func sweepDefaults() []bench.Experiment {
	var exps []bench.Experiment
	for _, id := range []string{"T2.1", "T2.5", "T2.6", "T2.8"} {
		if e, ok := bench.ExperimentByID(id); ok {
			exps = append(exps, e)
		}
	}
	return exps
}

// writeParallelSweep measures each cell once per requested worker count
// and records the count in the entry name (…/p=N), so a snapshot holds
// the whole scaling curve for every (experiment, engine, algorithm) cell.
func writeParallelSweep(path string, exps []bench.Experiment, counts []int, opt0 bool) error {
	if path == "" {
		return fmt.Errorf("-parallel requires -json <file>")
	}
	out := newBenchFile()
	cfg := measureConfig{counts: counts, tagP: true, optLevels: []int{1}}
	if opt0 {
		cfg.optLevels, cfg.tagO = []int{0}, true
	}
	for _, e := range exps {
		entries, err := measureExperiment(e, cfg)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entries...)
	}
	return writeBenchFile(path, out)
}

// measureConfig is one sweep specification: the worker counts and
// optimizer levels to measure every cell at, and which dimensions to tag
// into entry names.
type measureConfig struct {
	counts    []int
	optLevels []int // subset of {0, 1}
	ixLevels  []int // subset of {0, 1}; nil = indexed only (the default)
	tagP      bool
	tagO      bool
	tagIx     bool
}

// measureExperiment benchmarks one experiment's four cells at each
// (worker count, optimizer level). The document is generated and parsed
// once for the whole sweep; only the runner's pool width and optimizer
// switch change between cells (RunCell reads them at call time through the
// prepared experiment's runner pointer).
func measureExperiment(e bench.Experiment, cfg measureConfig) ([]BenchEntry, error) {
	var entries []BenchEntry
	runner := &bench.Runner{}
	prep, err := runner.Prepare(e)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, p := range cfg.counts {
		runner.Parallelism = p
		for _, engine := range []string{bench.EngineInterp, bench.EngineRelational} {
			for _, alg := range []core.Algorithm{core.Naive, core.Delta} {
				ixLevels := cfg.ixLevels
				if ixLevels == nil {
					ixLevels = []int{1} // indexed execution is the default
				}
				for _, o := range cfg.optLevels {
					if engine == bench.EngineInterp && o == 0 && len(cfg.optLevels) > 1 {
						continue // no plan, no optimizer: skip the duplicate cell
					}
					runner.Opt0 = o == 0
					for _, ix := range ixLevels {
						runner.NoIndex = ix == 0
						name := fmt.Sprintf("%s/%s/%s/%s", e.ID, e.Name, engine, alg)
						if tagged := o; cfg.tagO {
							if engine == bench.EngineInterp && len(cfg.optLevels) > 1 {
								tagged = 1 // sweep measures interp once, as the default level
							}
							name = fmt.Sprintf("%s/O=%d", name, tagged)
						}
						if cfg.tagIx {
							// Both engines honour ix: the interpreter gates its
							// dynamic probe, the relational engine compiles the
							// arena-scan plan shape.
							name = fmt.Sprintf("%s/ix=%d", name, ix)
						}
						if cfg.tagP {
							name = fmt.Sprintf("%s/p=%d", name, p)
						}
						fmt.Fprintf(os.Stderr, "measuring %s…\n", name)
						// Collect between cells: an earlier cell's giant tables
						// otherwise inflate the GC pacing target and tax every
						// later cell — which skews exactly the cross-p (and
						// cross-O) comparisons a sweep exists to make.
						runtime.GC()
						runtime.GC()
						var meas bench.Measurement
						var runErr error
						res := testing.Benchmark(func(b *testing.B) {
							b.ReportAllocs()
							for i := 0; i < b.N; i++ {
								m, err := prep.RunCell(engine, alg)
								if err != nil {
									// b.Fatal would swallow the error into the
									// discarded benchmark buffer and return a zero
									// result; surface it.
									runErr = err
									b.FailNow()
								}
								meas = m
							}
						})
						if runErr != nil {
							return nil, fmt.Errorf("%s: %w", name, runErr)
						}
						if res.N == 0 {
							return nil, fmt.Errorf("%s: benchmark produced no measurement", name)
						}
						entries = append(entries, BenchEntry{
							Name:     name,
							Phase:    "snapshot",
							NsOp:     float64(res.NsPerOp()),
							BytesOp:  res.AllocedBytesPerOp(),
							AllocsOp: res.AllocsPerOp(),
							NodesFed: meas.Stats.NodesFedBack,
							Depth:    meas.Stats.Depth,
							PhaseNs:  meas.Phases,
						})
					}
				}
			}
		}
	}
	return entries, nil
}

func newBenchFile() BenchFile { return bench.NewFile() }

func writeBenchFile(path string, out BenchFile) error { return bench.WriteFile(path, out) }

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad worker count %q in -parallel", part)
		}
		counts = append(counts, p)
	}
	return counts, nil
}

func writeMarkdown(rows []*bench.Row) {
	fmt.Println("| Query | Rel Naive | Rel Delta | Interp Naive | Interp Delta | Fed back (Naive) | Fed back (Delta) | Depth |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---:|---:|")
	for _, row := range rows {
		get := func(engine string, alg core.Algorithm) bench.Measurement {
			for _, m := range row.Measurements {
				if m.Engine == engine && m.Algorithm == alg {
					return m
				}
			}
			return bench.Measurement{}
		}
		rn, rd := get(bench.EngineRelational, core.Naive), get(bench.EngineRelational, core.Delta)
		in, id := get(bench.EngineInterp, core.Naive), get(bench.EngineInterp, core.Delta)
		depth := rn.Stats.Depth
		if in.Stats.Depth > depth {
			depth = in.Stats.Depth
		}
		fmt.Printf("| %s | %v | %v | %v | %v | %d | %d | %d |\n",
			row.Exp.Name,
			rn.Elapsed.Round(time.Millisecond), rd.Elapsed.Round(time.Millisecond),
			in.Elapsed.Round(time.Millisecond), id.Elapsed.Round(time.Millisecond),
			rn.Stats.NodesFedBack+in.Stats.NodesFedBack,
			rd.Stats.NodesFedBack+id.Stats.NodesFedBack,
			depth)
	}
}
