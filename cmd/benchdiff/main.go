// Command benchdiff gates benchmark regressions: it compares a current
// ifpbench -json snapshot against a committed baseline and exits non-zero
// when any gated cell's ns/op or allocs/op exceeds its tolerance.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json
//	benchdiff ... -cells '/rel/'        # gate only the relational cells
//	benchdiff ... -ns-tolerance 0.25 -allocs-tolerance 0.10
//
// allocs/op is deterministic across machines and is the reliable signal;
// ns/op varies with hardware, so its tolerance should stay generous when
// the baseline and the current snapshot come from different machines (the
// CI baseline is refreshed whenever a PR moves the numbers on purpose —
// regenerate with `make bench-baseline`).
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/bench"
)

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
		curPath   = flag.String("current", "", "snapshot to check (from ifpbench -json)")
		cells     = flag.String("cells", `/rel/`, "regexp selecting the gated cells (empty = all)")
		nsTol     = flag.Float64("ns-tolerance", 0.25, "relative ns/op tolerance (0.25 = +25%)")
		allocsTol = flag.Float64("allocs-tolerance", 0.25, "relative allocs/op tolerance")
	)
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	baseline, err := bench.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := bench.ReadFile(*curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}
	opts := bench.DiffOptions{NsTolerance: *nsTol, AllocsTolerance: *allocsTol}
	if *cells != "" {
		re, err := regexp.Compile(*cells)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -cells: %v\n", err)
			os.Exit(2)
		}
		opts.Cells = re
	}
	diffs := bench.Diff(baseline, current, opts)
	if len(diffs) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping cells to compare")
		os.Exit(2)
	}
	if bench.WriteDiff(os.Stdout, diffs) {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond tolerance (ns +%.0f%%, allocs +%.0f%%)\n",
			*nsTol*100, *allocsTol*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d cells within tolerance\n", len(diffs))
}
