// Command distcheck analyzes the distributivity of every inflationary
// fixed point in a query with both of the paper's approximations: the
// syntactic ds$x(·) rules of Figure 5 and the algebraic ∪ push-up of
// Section 4. It reports, per site, which algorithm each engine would pick.
//
// Usage:
//
//	distcheck -q 'with $x seeded by . recurse $x/child::a'
//	distcheck -f query.xq [-hint] [-explain]
package main

import (
	"flag"
	"fmt"
	"os"

	ifpxq "repro"
)

func main() {
	var (
		queryText = flag.String("q", "", "query text")
		queryFile = flag.String("f", "", "query file")
		hint      = flag.Bool("hint", false, "apply the §3.2 distributivity-hint rewriting and re-check")
		explain   = flag.Bool("explain", false, "also print the relational plan")
	)
	flag.Parse()
	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "distcheck: provide a query with -q or -f")
		os.Exit(2)
	}
	q, err := ifpxq.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *hint {
		q = q.Hint()
		fmt.Println("after hint rewriting:")
		fmt.Println(" ", q.Source())
	}
	reports := q.Distributivity()
	if len(reports) == 0 {
		fmt.Println("no inflationary fixed points in this query")
		return
	}
	for i, rep := range reports {
		fmt.Printf("fixpoint %d (recursion variable $%s):\n", i+1, rep.Var)
		fmt.Printf("  syntactic ds$x(·):  %v", rep.Syntactic)
		if rep.Syntactic {
			fmt.Printf("  (rule %s)\n", rep.SyntacticRule)
		} else {
			fmt.Printf("  (%s)\n", rep.SyntacticRule)
		}
		if rep.AlgebraicError != "" {
			fmt.Printf("  algebraic push-up:  n/a (%s)\n", rep.AlgebraicError)
		} else {
			fmt.Printf("  algebraic push-up:  strict=%v extended=%v\n", rep.Algebraic, rep.AlgebraicExt)
		}
		pick := "Naive"
		if rep.Syntactic || rep.Algebraic || rep.AlgebraicExt {
			pick = "Delta"
		}
		fmt.Printf("  auto mode runs:     %s\n", pick)
	}
	if *explain {
		plan, err := q.ExplainPlan()
		if err != nil {
			fatal(err)
		}
		fmt.Println("relational plan:")
		fmt.Print(plan)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distcheck:", err)
	os.Exit(1)
}
