// Command xmlgen generates the synthetic workloads of the paper's
// evaluation: XMark-style auction data, curriculum and hospital instances,
// and play markup (DESIGN.md §5 documents the substitutions).
//
// Usage:
//
//	xmlgen -kind auction -scale 0.01 > auction.xml
//	xmlgen -kind curriculum -n 800 > curriculum.xml
//	xmlgen -kind hospital -n 50000 > hospital.xml
//	xmlgen -kind play > play.xml
//
// With -snapshot the generated document is parsed and written as an arena
// snapshot (internal/store format) instead, ready for xq -store / xqd:
//
//	xmlgen -kind auction -scale 0.01 -snapshot store/auction.xml.xqs
//	xmlgen -kind play -xml store/play.xml -snapshot store/play.xml.xqs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/store"
	"repro/internal/xmldoc"
	"repro/internal/xmlgen"
)

func main() {
	var (
		kind     = flag.String("kind", "auction", "auction | curriculum | hospital | play")
		scale    = flag.Float64("scale", 0.01, "XMark-style scale factor (auction)")
		n        = flag.Int("n", 800, "size: courses (curriculum) or patient records (hospital)")
		seed     = flag.Int64("seed", 42, "generator seed")
		snapshot = flag.String("snapshot", "", "write an arena snapshot (.xqs) to this path instead of printing XML")
		xmlOut   = flag.String("xml", "", "with -snapshot: also write the XML text to this path")
	)
	flag.Parse()
	var out string
	switch *kind {
	case "auction":
		cfg := xmlgen.FromScale(*scale)
		cfg.Seed = *seed
		out = xmlgen.Auction(cfg)
	case "curriculum":
		cfg := xmlgen.CurriculumSized(*n)
		cfg.Seed = *seed
		out = xmlgen.Curriculum(cfg)
	case "hospital":
		cfg := xmlgen.HospitalSized(*n)
		cfg.Seed = *seed
		out = xmlgen.Hospital(cfg)
	case "play":
		cfg := xmlgen.PlaySized()
		cfg.Seed = *seed
		out = xmlgen.Play(cfg)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *snapshot == "" {
		if *xmlOut != "" {
			fatalIf(os.WriteFile(*xmlOut, []byte(out), 0o644))
			return
		}
		fmt.Print(out)
		return
	}
	// The document URI is the snapshot's base name without the .xqs
	// extension — exactly what a Store serving that directory resolves.
	uri := strings.TrimSuffix(filepath.Base(*snapshot), store.Ext)
	doc, err := xmldoc.ParseString(out, uri)
	fatalIf(err)
	fatalIf(store.Save(*snapshot, doc))
	if *xmlOut != "" {
		fatalIf(os.WriteFile(*xmlOut, []byte(out), 0o644))
	}
	st := doc.Stats()
	fmt.Fprintf(os.Stderr, "xmlgen: wrote %s: %d nodes, %d KiB arena (XML %d KiB)\n",
		*snapshot, st.Nodes, st.ArenaBytes/1024, len(out)/1024)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}
