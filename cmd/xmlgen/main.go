// Command xmlgen generates the synthetic workloads of the paper's
// evaluation: XMark-style auction data, curriculum and hospital instances,
// and play markup (DESIGN.md §5 documents the substitutions).
//
// Usage:
//
//	xmlgen -kind auction -scale 0.01 > auction.xml
//	xmlgen -kind curriculum -n 800 > curriculum.xml
//	xmlgen -kind hospital -n 50000 > hospital.xml
//	xmlgen -kind play > play.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/xmlgen"
)

func main() {
	var (
		kind  = flag.String("kind", "auction", "auction | curriculum | hospital | play")
		scale = flag.Float64("scale", 0.01, "XMark-style scale factor (auction)")
		n     = flag.Int("n", 800, "size: courses (curriculum) or patient records (hospital)")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()
	var out string
	switch *kind {
	case "auction":
		cfg := xmlgen.FromScale(*scale)
		cfg.Seed = *seed
		out = xmlgen.Auction(cfg)
	case "curriculum":
		cfg := xmlgen.CurriculumSized(*n)
		cfg.Seed = *seed
		out = xmlgen.Curriculum(cfg)
	case "hospital":
		cfg := xmlgen.HospitalSized(*n)
		cfg.Seed = *seed
		out = xmlgen.Hospital(cfg)
	case "play":
		cfg := xmlgen.PlaySized()
		cfg.Seed = *seed
		out = xmlgen.Play(cfg)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Print(out)
}
