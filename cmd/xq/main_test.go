package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/xmldoc"
	"repro/internal/xmlgen"
)

// runXQ drives the CLI in-process and returns (exit code, stdout, stderr).
func runXQ(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// fixtures builds a store directory holding a snapshot and a plain-XML
// document, plus a -dir directory holding a third document.
func fixtures(t *testing.T) (storeDir, dirDir string) {
	t.Helper()
	storeDir, dirDir = t.TempDir(), t.TempDir()
	doc, err := xmldoc.ParseString(xmlgen.Curriculum(xmlgen.CurriculumSized(100)), "curriculum.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(filepath.Join(storeDir, "curriculum.xml"+store.Ext), doc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(storeDir, "plain.xml"), []byte("<plain><a/></plain>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirDir, "fallback.xml"), []byte("<fb><b/><b/></fb>"), 0o644); err != nil {
		t.Fatal(err)
	}
	return storeDir, dirDir
}

func TestStoreThenDirResolution(t *testing.T) {
	storeDir, dirDir := fixtures(t)

	// Snapshot-first: the store serves curriculum.xml without touching -dir.
	code, out, stderr := runXQ(t, "-store", storeDir, "-dir", dirDir,
		"-q", `count(doc("curriculum.xml")//course)`)
	if code != 0 {
		t.Fatalf("store hit: exit %d, stderr %q", code, stderr)
	}
	if strings.TrimSpace(out) != "100" {
		t.Fatalf("store hit: got %q, want 100", out)
	}

	// Plain XML inside the store directory (no snapshot) parses.
	if code, out, stderr = runXQ(t, "-store", storeDir, "-dir", dirDir,
		"-q", `count(doc("plain.xml")/plain/a)`); code != 0 || strings.TrimSpace(out) != "1" {
		t.Fatalf("store XML: exit %d out %q stderr %q", code, out, stderr)
	}

	// Store miss falls through to -dir.
	if code, out, stderr = runXQ(t, "-store", storeDir, "-dir", dirDir,
		"-q", `count(doc("fallback.xml")//b)`); code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("dir fallback: exit %d out %q stderr %q", code, out, stderr)
	}
}

// TestResolutionErrorNamesEveryPath is the error-path contract: a URI
// missing everywhere must fail naming the URI and each searched location —
// the store's snapshot and XML paths and the -dir file — so the operator
// can see exactly where resolution looked.
func TestResolutionErrorNamesEveryPath(t *testing.T) {
	storeDir, dirDir := fixtures(t)
	code, _, stderr := runXQ(t, "-store", storeDir, "-dir", dirDir,
		"-q", `doc("nowhere.xml")`)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr)
	}
	for _, frag := range []string{
		"nowhere.xml",
		filepath.Join(storeDir, "nowhere.xml"+store.Ext),
		filepath.Join(dirDir, "nowhere.xml"),
	} {
		if !strings.Contains(stderr, frag) {
			t.Errorf("error does not name %q:\n%s", frag, stderr)
		}
	}

	// Without a store the -dir miss alone must still name its path.
	code, _, stderr = runXQ(t, "-dir", dirDir, "-q", `doc("nowhere.xml")`)
	if code != 1 || !strings.Contains(stderr, filepath.Join(dirDir, "nowhere.xml")) {
		t.Fatalf("dir-only miss: exit %d stderr %q", code, stderr)
	}

	// A store directory that does not exist fails at open, naming it.
	code, _, stderr = runXQ(t, "-store", filepath.Join(storeDir, "missing-subdir"),
		"-q", `doc("curriculum.xml")`)
	if code != 1 || !strings.Contains(stderr, "missing-subdir") {
		t.Fatalf("bad store dir: exit %d stderr %q", code, stderr)
	}
}

func TestStoreStatsOutput(t *testing.T) {
	storeDir, dirDir := fixtures(t)
	code, _, stderr := runXQ(t, "-store", storeDir, "-dir", dirDir, "-store-stats",
		"-engine", "rel", "-q", `count(doc("curriculum.xml")//course)`)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "store: hits=0 misses=1") {
		t.Fatalf("-store-stats output missing or wrong:\n%s", stderr)
	}
	// The snapshot-backed document carries a persistent index, and the
	// name-tested descendant step probes it.
	if !strings.Contains(stderr, "index: docs=1 persistent=1") {
		t.Fatalf("-store-stats index line missing or wrong:\n%s", stderr)
	}
	if strings.Contains(stderr, "probes=0 ") {
		t.Fatalf("-store-stats reports no index probes for an index-eligible query:\n%s", stderr)
	}
	// Without -store, -store-stats must not print (no store opened).
	code, _, stderr = runXQ(t, "-dir", dirDir, "-store-stats",
		"-q", `count(doc("fallback.xml")//b)`)
	if code != 0 || strings.Contains(stderr, "store:") {
		t.Fatalf("storeless -store-stats: exit %d stderr %q", code, stderr)
	}
}

func TestParallelFlagAndStats(t *testing.T) {
	storeDir, dirDir := fixtures(t)
	query := `for $c in doc("curriculum.xml")/curriculum/course
	          where exists($c intersect (with $x seeded by $c recurse $x/id(./prerequisites/pre_code)))
	          return $c/@code/string()`
	var base string
	for _, p := range []string{"1", "4"} {
		for _, engine := range []string{"interp", "rel"} {
			code, out, stderr := runXQ(t, "-store", storeDir, "-dir", dirDir,
				"-engine", engine, "-p", p, "-stats", "-q", query)
			if code != 0 {
				t.Fatalf("p=%s engine=%s: exit %d stderr %q", p, engine, code, stderr)
			}
			if base == "" {
				base = out
			} else if out != base {
				t.Fatalf("p=%s engine=%s: output diverges", p, engine)
			}
			if !strings.Contains(stderr, "fixpoint 1:") {
				t.Fatalf("p=%s engine=%s: -stats printed nothing:\n%s", p, engine, stderr)
			}
		}
	}
}

func TestFlagErrors(t *testing.T) {
	_, dirDir := fixtures(t)
	if code, _, _ := runXQ(t); code != 2 {
		t.Errorf("no query: exit %d, want 2", code)
	}
	if code, _, stderr := runXQ(t, "-q", "1", "-engine", "bogus"); code != 1 || !strings.Contains(stderr, "bogus") {
		t.Errorf("bad engine: exit %d stderr %q", code, stderr)
	}
	if code, _, stderr := runXQ(t, "-q", "1", "-mode", "bogus"); code != 1 || !strings.Contains(stderr, "bogus") {
		t.Errorf("bad mode: exit %d stderr %q", code, stderr)
	}
	if code, _, stderr := runXQ(t, "-f", filepath.Join(dirDir, "no-such.xq")); code != 1 || !strings.Contains(stderr, "no-such.xq") {
		t.Errorf("bad -f: exit %d stderr %q", code, stderr)
	}
	if code, _, _ := runXQ(t, "-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestOptLevelParity evaluates the same relational query at -O0 and -O1:
// the optimizer must not change what the query returns.
func TestOptLevelParity(t *testing.T) {
	storeDir, dirDir := fixtures(t)
	q := `for $c in doc("curriculum.xml")/curriculum/course
	      where exists($c intersect (with $x seeded by $c recurse $x/id(./prerequisites/pre_code)))
	      return $c/@code/string()`
	var outs [2]string
	for i, lvl := range []string{"0", "1"} {
		code, out, stderr := runXQ(t, "-store", storeDir, "-dir", dirDir,
			"-engine", "rel", "-O", lvl, "-q", q)
		if code != 0 {
			t.Fatalf("-O%s: exit %d stderr %q", lvl, code, stderr)
		}
		outs[i] = out
	}
	if outs[0] != outs[1] {
		t.Fatalf("-O0 and -O1 disagree:\n-O0: %q\n-O1: %q", outs[0], outs[1])
	}
}

func TestExplainAndFile(t *testing.T) {
	_, dirDir := fixtures(t)
	code, out, stderr := runXQ(t, "-explain", "-q", `count(doc("fallback.xml")//b)`)
	if code != 0 || out == "" {
		t.Fatalf("-explain: exit %d out %q stderr %q", code, out, stderr)
	}
	// -explain must show the plan that actually runs: raw AND optimized.
	for _, want := range []string{"-- raw plan --", "-- optimized plan (-O1, executed) --"} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain output misses %q:\n%s", want, out)
		}
	}
	if code, out0, _ := runXQ(t, "-explain", "-O", "0", "-q", `count(doc("fallback.xml")//b)`); code != 0 ||
		!strings.Contains(out0, "-- raw plan --") || strings.Contains(out0, "optimized plan") {
		t.Errorf("-O0 -explain should print only the raw plan:\n%s", out0)
	}
	if code, _, stderr := runXQ(t, "-O", "3", "-q", "1"); code != 1 || !strings.Contains(stderr, "-O3") {
		t.Errorf("bad -O level: exit %d stderr %q", code, stderr)
	}
	qf := filepath.Join(dirDir, "q.xq")
	if err := os.WriteFile(qf, []byte(`count(doc("fallback.xml")//b)`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, stderr := runXQ(t, "-dir", dirDir, "-f", qf); code != 0 || strings.TrimSpace(out) != "2" {
		t.Fatalf("-f: exit %d out %q stderr %q", code, out, stderr)
	}
}
