// Command xq evaluates an XQuery (with the paper's `with … seeded by …
// recurse` inflationary fixed point form) against XML documents resolved
// from a persistent snapshot store and/or a base directory.
//
// fn:doc resolution order is explicit: the snapshot store (when -store is
// given: <store>/<uri>.xqs, then <store>/<uri> as XML), then -dir, then an
// error naming the URI and every path searched.
//
// Usage:
//
//	xq -q 'count(doc("data.xml")//item)' [-dir .] [-engine interp|rel]
//	   [-mode auto|naive|delta] [-explain] [-stats]
//	xq -f query.xq -dir testdata
//	xq -q '...' -store snapshots/ -mmap -store-stats
package main

import (
	"flag"
	"fmt"
	"os"

	ifpxq "repro"
)

func main() {
	var (
		queryText  = flag.String("q", "", "query text")
		queryFile  = flag.String("f", "", "query file")
		dir        = flag.String("dir", ".", "base directory for fn:doc URIs")
		storeDir   = flag.String("store", "", "snapshot store directory (searched before -dir)")
		mmap       = flag.Bool("mmap", false, "open store snapshots via mmap")
		storeStats = flag.Bool("store-stats", false, "print document cache statistics")
		engine     = flag.String("engine", "interp", "engine: interp (tree-at-a-time) or rel (relational)")
		mode       = flag.String("mode", "auto", "fixpoint algorithm: auto, naive, delta")
		explain    = flag.Bool("explain", false, "print the relational plan instead of evaluating")
		stats      = flag.Bool("stats", false, "print fixpoint instrumentation")
	)
	flag.Parse()

	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "xq: provide a query with -q or -f")
		flag.Usage()
		os.Exit(2)
	}

	q, err := ifpxq.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *explain {
		plan, err := q.ExplainPlan()
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}

	opts := ifpxq.Options{Docs: ifpxq.DocsFromDir(*dir)}
	var st *ifpxq.Store
	if *storeDir != "" {
		var err error
		st, err = ifpxq.OpenStore(ifpxq.StoreOptions{Dir: *storeDir, Mmap: *mmap})
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}
	switch *engine {
	case "rel", "relational":
		opts.Engine = ifpxq.EngineRelational
	case "interp", "interpreter":
		opts.Engine = ifpxq.EngineInterpreter
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	switch *mode {
	case "auto":
	case "naive":
		opts.Mode = ifpxq.ModeNaive
	case "delta":
		opts.Mode = ifpxq.ModeDelta
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := q.Eval(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.String())
	if *storeStats && st != nil {
		s := st.Cache().Stats()
		fmt.Fprintf(os.Stderr, "store: hits=%d misses=%d evictions=%d docs=%d bytes=%d\n",
			s.Hits, s.Misses, s.Evictions, s.Docs, s.Bytes)
	}
	if *stats {
		for i, fp := range res.Fixpoints {
			fmt.Fprintf(os.Stderr,
				"fixpoint %d: %v distributive=%v executions=%d depth=%d fed-back=%d result=%d\n",
				i+1, fp.Algorithm, fp.Distributive, fp.Executions,
				fp.Stats.Depth, fp.Stats.NodesFedBack, fp.Stats.ResultSize)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
