// Command xq evaluates an XQuery (with the paper's `with … seeded by …
// recurse` inflationary fixed point form) against XML documents resolved
// from a persistent snapshot store and/or a base directory.
//
// fn:doc resolution order is explicit: the snapshot store (when -store is
// given: <store>/<uri>.xqs, then <store>/<uri> as XML), then -dir, then an
// error naming the URI and every path searched.
//
// Usage:
//
//	xq -q 'count(doc("data.xml")//item)' [-dir .] [-engine interp|rel]
//	   [-mode auto|naive|delta] [-p workers] [-O 0|1] [-explain] [-stats]
//	xq -f query.xq -dir testdata
//	xq -q '...' -store snapshots/ -mmap -store-stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ifpxq "repro"
	"repro/internal/xdm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the CLI surface —
// flag validation, store→dir resolution errors, -store-stats output — is
// testable without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		queryText  = fs.String("q", "", "query text")
		queryFile  = fs.String("f", "", "query file")
		dir        = fs.String("dir", ".", "base directory for fn:doc URIs")
		storeDir   = fs.String("store", "", "snapshot store directory (searched before -dir)")
		mmap       = fs.Bool("mmap", false, "open store snapshots via mmap")
		storeStats = fs.Bool("store-stats", false, "print document cache statistics")
		engine     = fs.String("engine", "interp", "engine: interp (tree-at-a-time) or rel (relational)")
		mode       = fs.String("mode", "auto", "fixpoint algorithm: auto, naive, delta")
		parallel   = fs.Int("p", 0, "fixpoint worker-pool width (0 = GOMAXPROCS, 1 = sequential)")
		optLevel   = fs.Int("O", 1, "relational plan optimizer level: 0 = verbatim plan, 1 = rewrite rules on")
		explain    = fs.Bool("explain", false, "print the relational plans (raw and, at -O1, optimized) instead of evaluating")
		analyze    = fs.Bool("analyze", false, "EXPLAIN ANALYZE: run the query and print phases, the plan annotated with actuals, and per-round fixpoint spans")
		stats      = fs.Bool("stats", false, "print fixpoint instrumentation")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatal := func(err error) int {
		fmt.Fprintln(stderr, "xq:", err)
		return 1
	}

	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			return fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(stderr, "xq: provide a query with -q or -f")
		fs.Usage()
		return 2
	}

	q, err := ifpxq.Parse(src)
	if err != nil {
		return fatal(err)
	}
	level := ifpxq.Opt1
	switch *optLevel {
	case 0:
		level = ifpxq.Opt0
	case 1:
	default:
		return fatal(fmt.Errorf("unknown optimizer level -O%d (use 0 or 1)", *optLevel))
	}
	if *explain {
		// Print the plan that actually runs: the raw translation and, when
		// the optimizer is on, the rewritten plan the executor gets.
		ex, err := q.Explain(level)
		if err != nil {
			return fatal(err)
		}
		fmt.Fprintln(stdout, "-- raw plan --")
		fmt.Fprint(stdout, ex.Raw)
		if ex.Optimized != "" {
			fmt.Fprintln(stdout, "-- optimized plan (-O1, executed) --")
			fmt.Fprint(stdout, ex.Optimized)
		}
		return 0
	}

	opts := ifpxq.Options{Docs: ifpxq.DocsFromDir(*dir), Parallelism: *parallel, Opt: level}
	var st *ifpxq.Store
	if *storeDir != "" {
		var err error
		st, err = ifpxq.OpenStore(ifpxq.StoreOptions{Dir: *storeDir, Mmap: *mmap})
		if err != nil {
			return fatal(err)
		}
		opts.Store = st
	}
	switch *engine {
	case "rel", "relational":
		opts.Engine = ifpxq.EngineRelational
	case "interp", "interpreter":
		opts.Engine = ifpxq.EngineInterpreter
	default:
		return fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	switch *mode {
	case "auto":
	case "naive":
		opts.Mode = ifpxq.ModeNaive
	case "delta":
		opts.Mode = ifpxq.ModeDelta
	default:
		return fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *analyze {
		rep, err := q.Analyze(opts)
		if err != nil {
			if rep == nil {
				return fatal(err)
			}
			// Budget truncation: print the partial report, then the error.
			fmt.Fprint(stdout, rep.Render())
			return fatal(err)
		}
		fmt.Fprint(stdout, rep.Render())
		return 0
	}

	res, err := q.Eval(opts)
	if err != nil {
		return fatal(err)
	}
	fmt.Fprintln(stdout, res.String())
	if *storeStats && st != nil {
		s := st.Cache().Stats()
		fmt.Fprintf(stderr, "store: hits=%d misses=%d evictions=%d docs=%d bytes=%d\n",
			s.Hits, s.Misses, s.Evictions, s.Docs, s.Bytes)
		// Index state per resident document (persistent = decoded from a
		// v2 snapshot; built = lazily constructed in memory), plus the
		// process-wide probe/fallback counters for the step executor.
		var indexed, persistent int
		var ixBytes int64
		for _, di := range st.Cache().Docs() {
			if di.Index.Present {
				indexed++
				ixBytes += di.Index.Bytes
			}
			if di.Index.Persistent {
				persistent++
			}
		}
		probes, fallbacks := xdm.IndexCounters()
		fmt.Fprintf(stderr, "index: docs=%d persistent=%d bytes=%d probes=%d fallbacks=%d\n",
			indexed, persistent, ixBytes, probes, fallbacks)
	}
	if *stats {
		for i, fp := range res.Fixpoints {
			fmt.Fprintf(stderr,
				"fixpoint %d: %v distributive=%v executions=%d depth=%d fed-back=%d result=%d\n",
				i+1, fp.Algorithm, fp.Distributive, fp.Executions,
				fp.Stats.Depth, fp.Stats.NodesFedBack, fp.Stats.ResultSize)
		}
	}
	return 0
}
