// Command xq evaluates an XQuery (with the paper's `with … seeded by …
// recurse` inflationary fixed point form) against XML documents resolved
// from a base directory.
//
// Usage:
//
//	xq -q 'count(doc("data.xml")//item)' [-dir .] [-engine interp|rel]
//	   [-mode auto|naive|delta] [-explain] [-stats]
//	xq -f query.xq -dir testdata
package main

import (
	"flag"
	"fmt"
	"os"

	ifpxq "repro"
)

func main() {
	var (
		queryText = flag.String("q", "", "query text")
		queryFile = flag.String("f", "", "query file")
		dir       = flag.String("dir", ".", "base directory for fn:doc URIs")
		engine    = flag.String("engine", "interp", "engine: interp (tree-at-a-time) or rel (relational)")
		mode      = flag.String("mode", "auto", "fixpoint algorithm: auto, naive, delta")
		explain   = flag.Bool("explain", false, "print the relational plan instead of evaluating")
		stats     = flag.Bool("stats", false, "print fixpoint instrumentation")
	)
	flag.Parse()

	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "xq: provide a query with -q or -f")
		flag.Usage()
		os.Exit(2)
	}

	q, err := ifpxq.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *explain {
		plan, err := q.ExplainPlan()
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}

	opts := ifpxq.Options{Docs: ifpxq.DocsFromDir(*dir)}
	switch *engine {
	case "rel", "relational":
		opts.Engine = ifpxq.EngineRelational
	case "interp", "interpreter":
		opts.Engine = ifpxq.EngineInterpreter
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	switch *mode {
	case "auto":
	case "naive":
		opts.Mode = ifpxq.ModeNaive
	case "delta":
		opts.Mode = ifpxq.ModeDelta
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := q.Eval(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.String())
	if *stats {
		for i, fp := range res.Fixpoints {
			fmt.Fprintf(os.Stderr,
				"fixpoint %d: %v distributive=%v executions=%d depth=%d fed-back=%d result=%d\n",
				i+1, fp.Algorithm, fp.Distributive, fp.Executions,
				fp.Stats.Depth, fp.Stats.NodesFedBack, fp.Stats.ResultSize)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
