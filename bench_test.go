// Benchmarks regenerating the paper's evaluation (Table 2): one benchmark
// per table row and engine/algorithm cell, at scales tuned so a full
// `go test -bench=. -benchmem` sweep stays in the minutes. The full-size
// table is produced by `go run ./cmd/ifpbench` (see EXPERIMENTS.md).
//
// Ablation benches at the bottom cover the design choices DESIGN.md §7
// calls out: strict vs. extended algebraic check, loop-invariant hoisting
// in µ/µ∆ (via forced plan invalidation), and the two engines on identical
// plans.
package ifpxq

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/xdm"
	"repro/internal/xmldoc"
	"repro/internal/xmlgen"
	"repro/internal/xq/dist"
	"repro/internal/xq/parser"

	"repro/internal/algebra"
	"repro/internal/xq/ast"
	"repro/internal/xq/interp"
)

// findFixpoint locates the first fixpoint site in a module.
func findFixpoint(m *ast.Module) *ast.Fixpoint {
	var out *ast.Fixpoint
	scan := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) bool {
			if fp, ok := x.(*ast.Fixpoint); ok && out == nil {
				out = fp
			}
			return out == nil
		})
	}
	scan(m.Body)
	for _, f := range m.Funcs {
		scan(f.Body)
	}
	return out
}

// benchDoc memoizes generated+parsed documents across benchmark runs.
var benchDocs = map[string]*xdm.Document{}

func docFor(b *testing.B, uri, xml string) DocResolver {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%s", uri, len(xml), xml[:32])
	d, ok := benchDocs[key]
	if !ok {
		var err error
		d, err = xmldoc.ParseString(xml, uri)
		if err != nil {
			b.Fatal(err)
		}
		benchDocs[key] = d
	}
	return func(u string) (*xdm.Document, error) {
		if u != uri {
			return nil, xdm.Errorf(xdm.ErrDoc, "unknown doc %q", u)
		}
		return d, nil
	}
}

func benchQuery(b *testing.B, query, uri, xml string, engine Engine, mode Mode) {
	b.Helper()
	docs := docFor(b, uri, xml)
	q, err := Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fed int64
	for i := 0; i < b.N; i++ {
		res, err := q.Eval(Options{Engine: engine, Mode: mode, Docs: docs})
		if err != nil {
			b.Fatal(err)
		}
		fed = 0
		for _, fp := range res.Fixpoints {
			fed += fp.Stats.NodesFedBack
		}
	}
	b.ReportMetric(float64(fed), "nodes-fed")
}

// ---- Table 2 rows ---------------------------------------------------------

func auctionXML(scale float64) string { return xmlgen.Auction(xmlgen.FromScale(scale)) }

// T2.1–T2.4: the XMark bidder network (Figure 10) at growing scales.
func BenchmarkBidderNetworkSmall_InterpNaive(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.002), EngineInterpreter, ModeNaive)
}
func BenchmarkBidderNetworkSmall_InterpDelta(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.002), EngineInterpreter, ModeDelta)
}
func BenchmarkBidderNetworkSmall_RelNaive(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.002), EngineRelational, ModeNaive)
}
func BenchmarkBidderNetworkSmall_RelDelta(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.002), EngineRelational, ModeDelta)
}
func BenchmarkBidderNetworkMedium_InterpNaive(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.004), EngineInterpreter, ModeNaive)
}
func BenchmarkBidderNetworkMedium_InterpDelta(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.004), EngineInterpreter, ModeDelta)
}
func BenchmarkBidderNetworkMedium_RelDelta(b *testing.B) {
	benchQuery(b, bench.BidderNetworkQuery, "auction.xml", auctionXML(0.004), EngineRelational, ModeDelta)
}

// T2.5: Romeo and Juliet dialogs (horizontal structural recursion).
func BenchmarkDialogs_InterpNaive(b *testing.B) {
	benchQuery(b, bench.DialogsQuery, "play.xml", xmlgen.Play(xmlgen.PlaySized()), EngineInterpreter, ModeNaive)
}
func BenchmarkDialogs_InterpDelta(b *testing.B) {
	benchQuery(b, bench.DialogsQuery, "play.xml", xmlgen.Play(xmlgen.PlaySized()), EngineInterpreter, ModeDelta)
}
func BenchmarkDialogs_RelNaive(b *testing.B) {
	benchQuery(b, bench.DialogsQuery, "play.xml", xmlgen.Play(xmlgen.PlaySized()), EngineRelational, ModeNaive)
}
func BenchmarkDialogs_RelDelta(b *testing.B) {
	benchQuery(b, bench.DialogsQuery, "play.xml", xmlgen.Play(xmlgen.PlaySized()), EngineRelational, ModeDelta)
}

// T2.6–T2.7: curriculum consistency check (xlinkit Rule 5).
func BenchmarkCurriculumMedium_InterpNaive(b *testing.B) {
	benchQuery(b, bench.CurriculumQuery, "curriculum.xml",
		xmlgen.Curriculum(xmlgen.CurriculumSized(200)), EngineInterpreter, ModeNaive)
}
func BenchmarkCurriculumMedium_InterpDelta(b *testing.B) {
	benchQuery(b, bench.CurriculumQuery, "curriculum.xml",
		xmlgen.Curriculum(xmlgen.CurriculumSized(200)), EngineInterpreter, ModeDelta)
}
func BenchmarkCurriculumMedium_RelDelta(b *testing.B) {
	benchQuery(b, bench.CurriculumQuery, "curriculum.xml",
		xmlgen.Curriculum(xmlgen.CurriculumSized(200)), EngineRelational, ModeDelta)
}
func BenchmarkCurriculumLarge_InterpDelta(b *testing.B) {
	benchQuery(b, bench.CurriculumQuery, "curriculum.xml",
		xmlgen.Curriculum(xmlgen.CurriculumSized(800)), EngineInterpreter, ModeDelta)
}

// T2.8: hospital hereditary-disease records.
func BenchmarkHospital_InterpNaive(b *testing.B) {
	benchQuery(b, bench.HospitalQuery, "hospital.xml",
		xmlgen.Hospital(xmlgen.HospitalSized(10000)), EngineInterpreter, ModeNaive)
}
func BenchmarkHospital_InterpDelta(b *testing.B) {
	benchQuery(b, bench.HospitalQuery, "hospital.xml",
		xmlgen.Hospital(xmlgen.HospitalSized(10000)), EngineInterpreter, ModeDelta)
}
func BenchmarkHospital_RelDelta(b *testing.B) {
	benchQuery(b, bench.HospitalQuery, "hospital.xml",
		xmlgen.Hospital(xmlgen.HospitalSized(10000)), EngineRelational, ModeDelta)
}

// ---- ablations (DESIGN.md §7) ----------------------------------------------

// BenchmarkAblationDistributivityChecks measures the cost of the two
// distributivity approximations themselves (they run once per query plan).
func BenchmarkAblationDistributivityChecks(b *testing.B) {
	m, err := parser.Parse(bench.BidderNetworkQuery)
	if err != nil {
		b.Fatal(err)
	}
	fp := findFixpoint(m)
	if fp == nil {
		b.Fatal("no fixpoint in bidder query")
	}
	b.Run("syntactic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.Check(fp.Body, fp.Var, dist.ModuleResolver(m))
		}
	})
	b.Run("algebraic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.CompileModule(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStrictVsExtended compares admission under the strict
// (Table 1 exact) and extended (left-of-\ pushes) algebraic rules across
// the benchmark query corpus; the work measured is the check itself.
func BenchmarkAblationStrictVsExtended(b *testing.B) {
	queries := []string{bench.BidderNetworkQuery, bench.DialogsQuery, bench.CurriculumQuery, bench.HospitalQuery}
	var plans []*algebra.Plan
	for _, src := range queries {
		m, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		p, err := algebra.CompileModule(m)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, p)
	}
	for _, strict := range []bool{true, false} {
		name := "extended"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			admitted := 0
			for i := 0; i < b.N; i++ {
				admitted = 0
				for _, p := range plans {
					for _, site := range p.Mus {
						if algebra.CheckDistributive(site.Mu, strict) {
							admitted++
						}
					}
				}
			}
			b.ReportMetric(float64(admitted), "admitted")
		})
	}
}

// BenchmarkAblationHoisting contrasts µ∆ with loop-invariant hoisting
// intact (sub-plans independent of the recursion base stay memoized across
// rounds) against a context that discards the whole memo each round.
func BenchmarkAblationHoisting(b *testing.B) {
	xml := auctionXML(0.002)
	m, err := parser.Parse(bench.BidderNetworkQuery)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := xmldoc.ParseString(xml, "auction.xml")
	if err != nil {
		b.Fatal(err)
	}
	docs := func(string) (*xdm.Document, error) { return doc, nil }
	b.Run("hoisted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			en, err := algebra.NewEngine(m, algebra.Options{Mode: algebra.ModeDelta, Docs: docs})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := en.Eval(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The no-hoisting variant is approximated by re-compiling and
	// re-running from scratch per iteration AND running the interpreter,
	// which recomputes invariant subexpressions per payload call.
	b.Run("interp-per-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			en := interp.New(m, interp.Options{Mode: interp.ModeDelta, Docs: docs})
			if _, err := en.Eval(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIFPCore measures the bare Naïve/Delta drivers over a synthetic
// linked structure (no query machinery): the asymptotic gap the paper's
// §2.1 analysis predicts.
func BenchmarkIFPCore(b *testing.B) {
	// Build a chain document c0 → c1 → … → c399 via child nesting.
	bld := xdm.NewBuilder("chain")
	const n = 400
	for i := 0; i < n; i++ {
		bld.StartElement("n")
	}
	for i := 0; i < n; i++ {
		bld.EndElement()
	}
	doc := bld.Done()
	payload := func(xs xdm.Sequence) (xdm.Sequence, error) {
		var out xdm.Sequence
		for _, it := range xs {
			for _, c := range it.Node().Children() {
				out = append(out, xdm.NewNode(c))
			}
		}
		return out, nil
	}
	seed := xdm.NodeSeq([]xdm.NodeRef{{D: doc, Pre: 1}})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunNaive(seed, payload, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunDelta(seed, payload, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
