# Tier-1 entry points. `make` = build + test.

GO ?= go

.PHONY: all build test bench bench-json bench-store bench-parallel bench-opt bench-index bench-check bench-baseline cover fmt-check fuzz explain explain-update vet lint ci clean loadsmoke obs-check cache-check index-check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) when anything is not gofmt-clean;
# CI runs it in the lint job.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis beyond vet: staticcheck (bug patterns, simplifications)
# and govulncheck (call-graph-reachable known vulnerabilities). CI installs
# the pinned versions below (see .github/workflows/ci.yml); locally the
# target runs whatever is on PATH and skips — loudly — when a tool is
# missing, so `make lint` never requires network access.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH, skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not on PATH, skipping (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

# Coverage floors for internal/algebra (the columnar executor) and
# internal/algebra/opt (the plan optimizer) — each package is profiled and
# gated on its own, then the profiles merge into cover.out (uploaded as a
# CI artifact). The floor sits a few points under the current levels
# (~80% / ~95%) so honest refactors pass but untested rewrites fail.
COVER_FLOOR ?= 75
COVER_PKGS ?= ./internal/algebra ./internal/algebra/opt
cover:
	@rm -f cover.out; first=1; \
	for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=cover.pkg.out $$pkg || { rm -f cover.pkg.out; exit 1; }; \
		total=$$($(GO) tool cover -func=cover.pkg.out | awk '/^total:/ { gsub("%", "", $$3); print $$3 }'); \
		echo "$$pkg coverage: $$total% (floor $(COVER_FLOOR)%)"; \
		awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
			{ echo "coverage below floor in $$pkg"; rm -f cover.pkg.out; exit 1; }; \
		if [ $$first = 1 ]; then cp cover.pkg.out cover.out; first=0; \
		else tail -n +2 cover.pkg.out >> cover.out; fi; \
	done; rm -f cover.pkg.out

# Overload smoke: a 5-second open-loop xqload burst (150 req/s, mixed
# query classes including a non-converging recursion) against an
# in-process xqd configured with a deliberately tiny capacity. Gates the
# degradation contract: zero 5xx, overflow shed as 429 + Retry-After,
# nonzero goodput, and a p99 bounded by the queue + query deadlines.
loadsmoke:
	$(GO) test -race -run TestLoadSmoke -count=1 -v ./cmd/xqd

# Observability gate: over the differential seed block, every engine ×
# mode × optimizer level × worker count configuration is evaluated with
# tracing off and with a live span recorder attached, and the two runs
# must agree byte for byte on results, errors, and fixpoint statistics.
# Proves the obs layer is read-only instrumentation, never a participant.
# The round-stats half pins the per-round fed/delta trace spans -O0 vs
# -O1: the delta-fed step rewrite may shrink what steps consume, never
# what the fixpoint feeds back or how many rounds it takes.
obs-check:
	$(GO) test -run 'TestTracingParity|TestRoundStatsParity' -count=1 ./internal/difftest

# Caching gate: same seed block, every configuration evaluated uncached
# and then under plan cache / result cache / both (each twice, so the
# second pass serves from warm caches). Results, errors, and fixpoint
# statistics must stay byte-identical, and warm caches must record hits.
cache-check:
	$(GO) test -run 'TestCachingParity' -count=1 ./internal/difftest

# Index gate: same seed block, every configuration evaluated with the
# name-index probe path disabled (pure arena scans) and enabled (the
# production default). Results, errors, and fixpoint statistics must stay
# byte-identical, and the probe path must have actually fired somewhere in
# the block.
index-check:
	$(GO) test -run 'TestIndexParity' -count=1 ./internal/difftest

# What CI runs (see .github/workflows/ci.yml). The -race pass covers the
# concurrent store/xqd tests and the parallel fixpoint pools; the plain
# pass runs the differential-harness seed block (internal/difftest); the
# coverage step enforces the internal/algebra floor; loadsmoke gates the
# overload/degradation contract; obs-check gates tracing-on/off parity;
# cache-check gates caches-on/off parity; index-check gates indexed-vs-
# scan parity.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(MAKE) fuzz FUZZTIME=10s
	$(MAKE) cover
	$(MAKE) obs-check
	$(MAKE) cache-check
	$(MAKE) index-check
	$(MAKE) loadsmoke

# Differential fuzzing: random documents + random fixpoint queries, every
# engine/mode/optimizer-level/worker-count combination must agree byte for
# byte. CI runs a short smoke; leave FUZZTIME unset locally for an
# open-ended hunt.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime $(FUZZTIME) ./internal/difftest

# Plan-shape gate: diff the explain renderings (raw + optimized plans with
# property annotations, operator counts) of the paper's query families
# against the pinned goldens in internal/algebra/opt/testdata. Any rewrite
# that changes a plan's shape fails here (and in CI, via `go test ./...`);
# accept intended changes with `make explain-update` and review the diff.
explain:
	$(GO) test -run 'TestGolden' -count=1 ./internal/algebra/opt

explain-update:
	$(GO) test -run 'TestGolden' -count=1 -update ./internal/algebra/opt
	git --no-pager diff --stat internal/algebra/opt/testdata

# The Table 2 cells tracked across PRs (see EXPERIMENTS.md, BENCH_1.json).
bench:
	$(GO) test -run '^$$' -bench 'IFPCore|BidderNetworkSmall' -benchmem

# next-bench prints the first unused BENCH_<n>.json name, so snapshots
# accrue as a trajectory instead of overwriting each other. Only the
# numbered trajectory files count: BENCH_baseline.json (the committed CI
# gate baseline) and BENCH_pr.json (the transient bench-check snapshot,
# removed by `make clean`) never shift the numbering.
define next-bench
$$(n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; echo BENCH_$$n.json)
endef

# BENCH_CHECK_EXPS is the short bench-gate workload, kept to minutes per
# PR while covering both relational fixpoint algorithms. T2.1 is the
# shallow bidder cell; T2.4 (huge bidder network) is the step-dominated
# cell where the interpreter's name-index probes buy 4.5× over arena
# scans, so index-path regressions gate here; T2.8 (hospital pedigrees)
# is the deep-recursion cell whose optimized plan carries the delta-fed
# step rewrite (recdelta), so per-round step cost regressions on the
# delta path gate here. Regenerate the committed baseline
# (bench-baseline) whenever a PR moves these numbers on purpose.
BENCH_CHECK_EXPS ?= T2.1,T2.4,T2.8

# bench-check is the CI regression gate: measure the short workload into
# BENCH_pr.json and compare against the committed BENCH_baseline.json.
# allocs/op is deterministic and machine-independent, so it carries the
# tight 25% gate; ns/op is measured on whatever runner CI hands out while
# the baseline came from another machine entirely, so it only catches
# catastrophic (>2×) slowdowns — anything tighter would flake on runner
# variance rather than code. All cells gate — the interpreter cells are
# where the index-probe path shows, the relational cells where the
# fixpoint fabric does.
bench-check:
	$(GO) run ./cmd/ifpbench -exp $(BENCH_CHECK_EXPS) -json BENCH_pr.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json \
		-cells '' -ns-tolerance 1.0 -allocs-tolerance 0.25

# bench-baseline refreshes the committed gate baseline from the same
# workload bench-check measures.
bench-baseline:
	$(GO) run ./cmd/ifpbench -exp $(BENCH_CHECK_EXPS) -json BENCH_baseline.json

# Machine-readable snapshot of the full-size experiments.
bench-json:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -json $$out

# Document store benchmarks: cold parse vs snapshot read vs mmap open,
# plus cold-/warm-cache query latency.
bench-store:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -store -json $$out

# Worker-count sweep over the fixpoint workloads (see BENCH_3.json):
# every cell measured at 1/2/4/8 fixpoint workers.
bench-parallel:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -parallel 1,2,4,8 -json $$out

# Optimizer sweep (see BENCH_5.json): every cell measured with the plan
# optimizer off and on (…/O=0 and …/O=1 entries), so what the rewrite
# layer buys per cell stays diffable across PRs.
bench-opt:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -opt-sweep -json $$out

# Index sweep (see BENCH_10.json): every cell measured with name-index
# probing off and on (…/ix=0 and …/ix=1 entries), so what the persistent
# snapshot indexes buy per cell stays diffable across PRs.
bench-index:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -index-sweep -json $$out

clean:
	rm -f ifpbench xq xqd distcheck xmlgen benchdiff *.test BENCH_snapshot*.json
	rm -f cover.out cover.pkg.out BENCH_pr.json
	rm -rf internal/difftest/testdata/fuzz
