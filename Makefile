# Tier-1 entry points. `make` = build + test.

GO ?= go

.PHONY: all build test bench bench-json vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The Table 2 cells tracked across PRs (see EXPERIMENTS.md, BENCH_1.json).
bench:
	$(GO) test -run '^$$' -bench 'IFPCore|BidderNetworkSmall' -benchmem

# Machine-readable snapshot of the full-size experiments.
bench-json:
	$(GO) run ./cmd/ifpbench -json BENCH_snapshot.json

clean:
	rm -f ifpbench xq distcheck xmlgen *.test BENCH_snapshot*.json
