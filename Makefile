# Tier-1 entry points. `make` = build + test.

GO ?= go

.PHONY: all build test bench bench-json bench-store vet ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# What CI runs (see .github/workflows/ci.yml).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# The Table 2 cells tracked across PRs (see EXPERIMENTS.md, BENCH_1.json).
bench:
	$(GO) test -run '^$$' -bench 'IFPCore|BidderNetworkSmall' -benchmem

# next-bench prints the first unused BENCH_<n>.json name, so snapshots
# accrue as a trajectory instead of overwriting each other.
define next-bench
$$(n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; echo BENCH_$$n.json)
endef

# Machine-readable snapshot of the full-size experiments.
bench-json:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -json $$out

# Document store benchmarks: cold parse vs snapshot read vs mmap open,
# plus cold-/warm-cache query latency.
bench-store:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -store -json $$out

clean:
	rm -f ifpbench xq xqd distcheck xmlgen *.test BENCH_snapshot*.json
