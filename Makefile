# Tier-1 entry points. `make` = build + test.

GO ?= go

.PHONY: all build test bench bench-json bench-store bench-parallel fuzz vet ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# What CI runs (see .github/workflows/ci.yml). The -race pass covers the
# concurrent store/xqd tests and the parallel fixpoint pools; the plain
# pass runs the differential-harness seed block (internal/difftest).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz FUZZTIME=10s

# Differential fuzzing: random documents + random fixpoint queries, every
# engine/mode/worker-count combination must agree byte for byte. CI runs a
# short smoke; leave FUZZTIME unset locally for an open-ended hunt.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime $(FUZZTIME) ./internal/difftest

# The Table 2 cells tracked across PRs (see EXPERIMENTS.md, BENCH_1.json).
bench:
	$(GO) test -run '^$$' -bench 'IFPCore|BidderNetworkSmall' -benchmem

# next-bench prints the first unused BENCH_<n>.json name, so snapshots
# accrue as a trajectory instead of overwriting each other.
define next-bench
$$(n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; echo BENCH_$$n.json)
endef

# Machine-readable snapshot of the full-size experiments.
bench-json:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -json $$out

# Document store benchmarks: cold parse vs snapshot read vs mmap open,
# plus cold-/warm-cache query latency.
bench-store:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -store -json $$out

# Worker-count sweep over the fixpoint workloads (see BENCH_3.json):
# every cell measured at 1/2/4/8 fixpoint workers.
bench-parallel:
	@out=$(next-bench); echo "writing $$out"; $(GO) run ./cmd/ifpbench -parallel 1,2,4,8 -json $$out

clean:
	rm -f ifpbench xq xqd distcheck xmlgen *.test BENCH_snapshot*.json
