// Package ifpxq is the public API of this repository: an XQuery engine
// pair with the paper's inflationary fixed point operator
// `with $x seeded by e_seed recurse e_rec`, its Naïve and Delta evaluation
// algorithms, and both distributivity checks (syntactic ds$x(·), Figure 5;
// algebraic ∪ push-up, Section 4) that decide when Delta is safe.
//
// Quickstart:
//
//	docs := ifpxq.DocsFromStrings(map[string]string{"curriculum.xml": xml})
//	q, _ := ifpxq.Parse(`with $x seeded by doc("curriculum.xml")//course[@code="c1"]
//	                     recurse $x/id(./prerequisites/pre_code)`)
//	res, _ := q.Eval(ifpxq.Options{Docs: docs})
//	fmt.Println(res.String())
package ifpxq

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/algebra/opt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/regularxpath"
	"repro/internal/store"
	"repro/internal/xdm"
	"repro/internal/xmldoc"
	"repro/internal/xq/ast"
	"repro/internal/xq/dist"
	"repro/internal/xq/interp"
	"repro/internal/xq/parser"
)

// Engine selects the evaluation back-end.
type Engine uint8

// Engines. EngineInterpreter evaluates the tree-at-a-time way (the paper's
// Saxon experiments); EngineRelational compiles to the Table 1 algebra and
// executes µ/µ∆ set-at-a-time (the MonetDB/XQuery experiments).
const (
	EngineInterpreter Engine = iota
	EngineRelational
)

// OptLevel selects how the relational plan optimizer runs. The zero value
// is "on": every evaluation gets the property-driven rewrite pass unless
// the caller explicitly asks for the compiler's verbatim plan.
type OptLevel uint8

// Optimizer levels.
const (
	// OptDefault is Opt1: the optimizer is on by default.
	OptDefault OptLevel = iota
	// Opt0 executes the verbatim loop-lifting translation (-O0).
	Opt0
	// Opt1 runs property inference + the rewrite rule engine + sub-plan
	// hash-consing between compilation and execution (-O1).
	Opt1
)

// Mode selects the fixpoint algorithm.
type Mode uint8

// Fixpoint modes. ModeAuto lets the engine's distributivity check decide —
// the processor-in-control behaviour the paper advocates.
const (
	ModeAuto Mode = iota
	ModeNaive
	ModeDelta
)

// DocResolver resolves fn:doc URIs.
type DocResolver = func(uri string) (*xdm.Document, error)

// Store is a persistent document store: a directory of arena snapshots
// (and XML files) served through a bounded, concurrency-safe document
// cache. See OpenStore and internal/store.
type Store = store.Store

// StoreOptions configure OpenStore.
type StoreOptions = store.Options

// OpenStore opens a persistent document store rooted at opts.Dir. Set the
// result as Options.Store to resolve fn:doc through its cache.
func OpenStore(opts StoreOptions) (*Store, error) { return store.Open(opts) }

// SaveSnapshot writes the document's arena snapshot to path (atomically),
// so later loads skip XML parsing; by convention snapshots live next to
// their XML under "<uri>.xqs".
func SaveSnapshot(path string, d *xdm.Document) error { return store.Save(path, d) }

// LoadSnapshot reads an arena snapshot. Mmap opens it zero-copy via mmap
// (falling back to a plain read on platforms without mmap support).
func LoadSnapshot(path string, mmap bool) (*xdm.Document, error) {
	if mmap {
		return store.LoadMmap(path)
	}
	return store.Load(path)
}

// DocsChain tries each resolver in order. A resolver that does not know a
// URI signals so with a not-found error (xdm.IsNotFound) and the chain
// falls through; any other error — a parse failure, a corrupt snapshot —
// aborts immediately. When every resolver misses, the error names the URI
// and repeats each resolver's search path.
func DocsChain(resolvers ...DocResolver) DocResolver {
	return func(uri string) (*xdm.Document, error) {
		var attempts []string
		for _, r := range resolvers {
			d, err := r(uri)
			if err == nil {
				return d, nil
			}
			if !xdm.IsNotFound(err) {
				return nil, err
			}
			attempts = append(attempts, err.Error())
		}
		return nil, xdm.NotFoundf("document %q not found: %s",
			uri, strings.Join(attempts, "; "))
	}
}

// Options configure evaluation.
type Options struct {
	Engine        Engine
	Mode          Mode
	MaxIterations int
	// StrictAlgebraicCheck uses Table 1's exact push rules in the
	// relational engine's auto decision (default false = extended rules).
	StrictAlgebraicCheck bool
	// Opt selects the relational plan optimizer level (default on; Opt0
	// runs the compiler's verbatim plan). The optimizer is semantics-
	// preserving: results and fixpoint statistics are byte-identical at
	// every level (guarded by internal/difftest). The interpreter engine
	// has no plan stage, so the level is a no-op there.
	Opt  OptLevel
	Docs DocResolver
	// Store, when set, resolves fn:doc through the persistent document
	// store's cache: every document the evaluation touches is pinned in
	// the cache (stable node identity, no eviction mid-query) until the
	// evaluation returns. URIs the store does not know fall through to
	// Docs when that is also set.
	Store *store.Store
	// ContextItem sets the initial context item (interpreter only).
	ContextItem *xdm.Item
	// Parallelism is the fixpoint-round worker-pool width shared by both
	// engines: per-iteration absorption, step joins, and join probes in
	// the relational µ/µ∆, and the accumulation in the interpreter's
	// Naïve/Delta drivers, all shard across it. 0 = runtime.GOMAXPROCS(0),
	// 1 = sequential. Results are byte-identical at every setting.
	Parallelism int
	// NoIndex disables the relational step executor's name-index probe
	// path (optimizer-flagged steps fall back to arena walks). Results
	// are byte-identical either way — the knob exists for the difftest
	// index-parity gate and the bench index sweep.
	NoIndex bool
	// Context, when non-nil, cancels evaluation: fixpoint rounds observe
	// it between rounds and inside sharded operators, and the worker pool
	// is fully drained before the context's error is returned.
	Context context.Context
	// Deadline, when non-zero, bounds the evaluation's wall-clock time.
	// It is checked on entry, between fixpoint rounds in both engines, at
	// every table materialization in the relational executor, and on a
	// sampled counter in the interpreter's tree walk; crossing it returns
	// a typed xdm.ErrDeadline error. Unlike Context cancellation the error
	// is deterministic in shape, so servers can classify timeouts.
	Deadline time.Time
	// MaxRounds bounds the post-seed rounds of every fixpoint site (per
	// execution). The paper's µ/µ∆ deliberately admit unbounded recursion;
	// MaxRounds turns a runaway site into a typed xdm.ErrRounds error.
	// Unlike MaxIterations (the divergence backstop, an ErrIFP), this is a
	// per-request allowance with its own budget-exceeded code. 0 = no
	// bound beyond MaxIterations.
	MaxRounds int
	// MaxRows bounds the rows the evaluation may materialize, cumulatively:
	// fixpoint feeds and growth in both engines, plus every operator table
	// the relational executor builds. Exceeding it returns a typed
	// xdm.ErrRows error. 0 = unbounded.
	MaxRows int64
	// Trace, when non-nil, records the evaluation's phases
	// (compile/optimize/store-resolve/exec) and one span per fixpoint
	// round at every site, in both engines. Tracing is passive: results,
	// errors, and fixpoint statistics are byte-identical with and without
	// it (guarded by internal/difftest CheckTracing), and a nil Trace
	// costs only nil checks. Query.Analyze supplies one automatically.
	Trace *obs.Trace
	// PlanCache, when set, reuses compiled, optimized relational plans
	// across evaluations keyed on (source, mode, strict, opt level), so a
	// repeat query skips the compile and optimize phases entirely. Plans
	// are immutable after compilation (all execution state is per-run),
	// so one cache is safe under any concurrency. Caching is
	// semantics-preserving: results, errors, and fixpoint statistics are
	// byte-identical with and without it (difftest CheckCaching).
	PlanCache *PlanCache
	// ResultCache, when set, serves repeat evaluations their complete
	// cached result, keyed on the plan's structural hash plus the
	// deterministic budget options, and valid only while the document
	// store's generation stands still. Incomplete outcomes (errors,
	// budget truncations) are never cached, and evaluations with a
	// ContextItem bypass the cache (node identity cannot key it safely).
	ResultCache *ResultCache
}

// budget assembles the per-evaluation resource budget; nil when nothing
// is bounded. Each Eval call builds a fresh budget, so row accounting
// never leaks across evaluations of a shared Query.
func (o *Options) budget() *xdm.Budget {
	return xdm.NewBudget(o.Deadline, o.MaxRounds, o.MaxRows)
}

// resolver builds the effective fn:doc resolver for one evaluation and
// returns a cleanup releasing any store pins it acquired.
func (o *Options) resolver() (DocResolver, func()) {
	if o.Store == nil {
		return o.Docs, func() {}
	}
	sess := o.Store.Session()
	if o.Docs == nil {
		return sess.Resolve, sess.Close
	}
	return DocsChain(sess.Resolve, o.Docs), sess.Close
}

// Query is a parsed query, reusable across evaluations.
type Query struct {
	src    string
	module *ast.Module
	// rxp marks queries translated from Regular XPath, whose source text
	// lives in a different language than XQuery — cache keys must keep
	// the two namespaces apart even when the text coincides.
	rxp bool
}

// Parse parses XQuery source (prolog + body).
func Parse(src string) (*Query, error) {
	m, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{src: src, module: m}, nil
}

// MustParse parses or panics.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseRegularXPath translates a Regular XPath expression [25] (steps, /,
// |, filters, + and * closures) into a query evaluated from the document
// roots supplied at evaluation time via the context item.
func ParseRegularXPath(src string) (*Query, error) {
	p, err := regularxpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{src: src, module: &ast.Module{Body: p.Expr()}, rxp: true}, nil
}

// Module exposes the parsed AST (analysis tooling).
func (q *Query) Module() *ast.Module { return q.module }

// Source returns the original query text.
func (q *Query) Source() string { return q.src }

// FixpointReport describes one `with … seeded by … recurse` site.
type FixpointReport struct {
	Var string
	// Syntactic is the Figure 5 ds$x(·) verdict with the rule or reason.
	Syntactic     bool
	SyntacticRule string
	// Algebraic is the ∪ push-up verdict over the compiled body plan
	// (strict Table 1 rules) and its extended variant.
	Algebraic    bool
	AlgebraicExt bool
	// AlgebraicError reports why the body did not compile relationally.
	AlgebraicError string
}

// Distributivity analyzes every fixpoint site in the query with both the
// syntactic and the algebraic check.
func (q *Query) Distributivity() []FixpointReport {
	var reports []FixpointReport
	resolver := dist.ModuleResolver(q.module)
	var sites []*ast.Fixpoint
	ast.Walk(q.module.Body, func(e ast.Expr) bool {
		if fp, ok := e.(*ast.Fixpoint); ok {
			sites = append(sites, fp)
		}
		return true
	})
	for _, f := range q.module.Funcs {
		ast.Walk(f.Body, func(e ast.Expr) bool {
			if fp, ok := e.(*ast.Fixpoint); ok {
				sites = append(sites, fp)
			}
			return true
		})
	}
	plan, planErr := algebra.CompileModule(q.module)
	for i, fp := range sites {
		rep := FixpointReport{Var: fp.Var}
		syn := dist.Check(fp.Body, fp.Var, resolver)
		rep.Syntactic = syn.Safe
		rep.SyntacticRule = syn.Rule
		if planErr != nil {
			rep.AlgebraicError = planErr.Error()
		} else if i < len(plan.Mus) {
			rep.Algebraic = plan.Mus[i].Distributive
			rep.AlgebraicExt = plan.Mus[i].DistributiveExt
		}
		reports = append(reports, rep)
	}
	return reports
}

// ExplainPlan renders the raw (pre-optimization) relational plan of the
// query; Explain returns both the raw and the optimized plan.
func (q *Query) ExplainPlan() (string, error) {
	plan, err := algebra.CompileModule(q.module)
	if err != nil {
		return "", err
	}
	return algebra.Explain(plan.Root), nil
}

// PlanExplanation carries the raw and optimized renderings of a query's
// relational plan, each annotated with the optimizer's inferred properties
// (live columns, key sets, node-only columns, loop dependence), plus the
// per-plan operator multiset for before/after comparisons.
type PlanExplanation struct {
	Raw          string
	Optimized    string
	RawOps       map[string]int
	OptimizedOps map[string]int
}

// Explain compiles the query and renders the raw plan next to the plan the
// relational engine actually executes at the given optimizer level. At Opt0
// the optimized rendering is empty: the raw plan is what runs.
func (q *Query) Explain(level OptLevel) (*PlanExplanation, error) {
	plan, err := algebra.CompileModule(q.module)
	if err != nil {
		return nil, err
	}
	// Mirror the engine's default auto decision (extended rules) so the
	// rendering shows µ vs µ∆ the way evaluation would run them.
	for _, site := range plan.Mus {
		site.Mu.Delta = site.DistributiveExt
	}
	out := &PlanExplanation{
		Raw:    algebra.ExplainWith(plan.Root, opt.Annotate(plan.Root)),
		RawOps: algebra.Operators(plan.Root),
	}
	if level == Opt0 {
		return out, nil
	}
	opt.Optimize(plan)
	out.Optimized = algebra.ExplainWith(plan.Root, opt.Annotate(plan.Root))
	out.OptimizedOps = algebra.Operators(plan.Root)
	return out, nil
}

// FixpointStats instruments one fixpoint site's execution.
type FixpointStats struct {
	Algorithm    core.Algorithm
	Distributive bool
	Executions   int
	Stats        core.Stats
}

// Result is an evaluation outcome.
type Result struct {
	Items     xdm.Sequence
	Fixpoints []FixpointStats
}

// String serializes the result sequence as XML/text.
func (r *Result) String() string { return xmldoc.SerializeSequence(r.Items) }

// Strings returns the string value of each item.
func (r *Result) Strings() []string {
	out := make([]string, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.StringValue()
	}
	return out
}

// Count returns the result cardinality.
func (r *Result) Count() int { return len(r.Items) }

// Eval evaluates the query under the given options.
//
// When a resource budget (Deadline, MaxRounds, MaxRows) cuts the
// evaluation off, the error is typed (xdm.IsBudget) and the returned
// Result is non-nil with nil Items and Fixpoints carrying the partial
// instrumentation collected before the cutoff. Every other error returns
// a nil Result, as before.
func (q *Query) Eval(opts Options) (*Result, error) {
	budget := opts.budget()
	// The entry check makes an already-expired deadline fail identically
	// across every engine, mode, optimizer level, and worker count: no
	// engine runs a single operator first.
	if err := budget.CheckDeadline(); err != nil {
		return &Result{}, err
	}
	docs, done := opts.resolver()
	defer done()
	if opts.Trace != nil && docs != nil {
		docs = tracedDocs(opts.Trace, docs)
	}
	rcache := opts.ResultCache
	if opts.ContextItem != nil {
		// A context item is bound by node identity; no stable key exists.
		rcache = nil
	}
	switch opts.Engine {
	case EngineRelational:
		plan, planHash, err := q.relationalPlan(&opts)
		if err != nil {
			return nil, err
		}
		if rcache == nil {
			return relationalResult(relationalEngine(plan, &opts, budget, docs, nil))
		}
		key := resultKey(&opts, planHash)
		if res, ok := rcache.get(key); ok {
			return res, nil
		}
		// Read the generation before evaluating: if the store moves while
		// we run, the insert below is tagged too old and dropped rather
		// than trusted.
		gen := rcache.generation()
		col := newURICollector(docs)
		res, err := relationalResult(relationalEngine(plan, &opts, budget, col.resolver(), nil))
		if err == nil {
			rcache.put(key, gen, res, col.uris())
		}
		return res, err
	default:
		if rcache == nil {
			return interpResult(q.newInterpEngine(&opts, budget, docs))
		}
		key := resultKey(&opts, q.srcHash())
		if res, ok := rcache.get(key); ok {
			return res, nil
		}
		gen := rcache.generation()
		col := newURICollector(docs)
		res, err := interpResult(q.newInterpEngine(&opts, budget, col.resolver()))
		if err == nil {
			rcache.put(key, gen, res, col.uris())
		}
		return res, err
	}
}

// tracedDocs wraps a resolver so each document resolution records one
// "store-resolve" phase (renderers merge the spans by name).
func tracedDocs(tr *obs.Trace, docs DocResolver) DocResolver {
	return func(uri string) (*xdm.Document, error) {
		defer tr.StartPhase("store-resolve")()
		return docs(uri)
	}
}

// relationalResult executes the relational engine and packages its outcome
// under the Result/budget-error contract documented on Eval.
func relationalResult(en *algebra.Engine) (*Result, error) {
	distributive := false
	for _, site := range en.Plan().Mus {
		distributive = distributive || site.Distributive || site.DistributiveExt
	}
	seq, runs, err := en.Eval()
	res := &Result{}
	for _, run := range runs {
		alg := core.Naive
		if run.Delta {
			alg = core.Delta
		}
		res.Fixpoints = append(res.Fixpoints, FixpointStats{
			Algorithm: alg, Distributive: distributive,
			Executions: run.Executions, Stats: run.Stats,
		})
	}
	if err != nil {
		if xdm.IsBudget(err) {
			return res, err
		}
		return nil, err
	}
	res.Items = seq
	return res, nil
}

// newInterpEngine builds the interpreter engine for one evaluation.
func (q *Query) newInterpEngine(opts *Options, budget *xdm.Budget, docs DocResolver) *interp.Engine {
	mode := interp.ModeAuto
	switch opts.Mode {
	case ModeNaive:
		mode = interp.ModeNaive
	case ModeDelta:
		mode = interp.ModeDelta
	}
	return interp.New(q.module, interp.Options{
		Mode: mode, MaxIterations: opts.MaxIterations,
		Docs: docs, ContextItem: opts.ContextItem,
		Parallelism: opts.Parallelism, Context: opts.Context,
		NoIndex: opts.NoIndex,
		Budget:  budget, Trace: opts.Trace,
	})
}

// interpResult executes the interpreter engine and packages its outcome
// under the Result/budget-error contract documented on Eval.
func interpResult(en *interp.Engine) (*Result, error) {
	out, err := en.Eval()
	if err != nil {
		if out != nil && xdm.IsBudget(err) {
			res := &Result{}
			for _, run := range out.IFPRuns {
				res.Fixpoints = append(res.Fixpoints, FixpointStats{
					Algorithm: run.Algorithm, Distributive: run.Distributive,
					Executions: run.Executions, Stats: run.Stats,
				})
			}
			return res, err
		}
		return nil, err
	}
	res := &Result{Items: out.Value}
	for _, run := range out.IFPRuns {
		res.Fixpoints = append(res.Fixpoints, FixpointStats{
			Algorithm: run.Algorithm, Distributive: run.Distributive,
			Executions: run.Executions, Stats: run.Stats,
		})
	}
	return res, nil
}

// EvalString parses and evaluates in one step.
func EvalString(src string, opts Options) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Eval(opts)
}

// ParseDocument parses an XML document for use with DocsFromDocuments.
func ParseDocument(xml, uri string) (*xdm.Document, error) {
	return xmldoc.ParseString(xml, uri)
}

// DocsFromStrings builds a resolver over in-memory XML texts keyed by URI.
// Documents are parsed once and cached (stable node identity).
func DocsFromStrings(byURI map[string]string) DocResolver {
	cache := map[string]*xdm.Document{}
	return func(uri string) (*xdm.Document, error) {
		if d, ok := cache[uri]; ok {
			return d, nil
		}
		src, ok := byURI[uri]
		if !ok {
			return nil, xdm.NotFoundf("doc(%q): not among the %d in-memory documents", uri, len(byURI))
		}
		d, err := xmldoc.ParseString(src, uri)
		if err != nil {
			return nil, err
		}
		cache[uri] = d
		return d, nil
	}
}

// DocsFromDocuments builds a resolver over pre-parsed documents.
func DocsFromDocuments(byURI map[string]*xdm.Document) DocResolver {
	return func(uri string) (*xdm.Document, error) {
		if d, ok := byURI[uri]; ok {
			return d, nil
		}
		return nil, xdm.NotFoundf("doc(%q): not among the pre-parsed documents", uri)
	}
}

// DocsFromDir resolves URIs against files under a directory.
func DocsFromDir(dir string) DocResolver {
	cache := map[string]*xdm.Document{}
	return func(uri string) (*xdm.Document, error) {
		if d, ok := cache[uri]; ok {
			return d, nil
		}
		clean := filepath.Clean(uri)
		if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
			return nil, xdm.Errorf(xdm.ErrDoc, "document URI %q escapes %q", uri, dir)
		}
		f, err := os.Open(filepath.Join(dir, clean))
		if os.IsNotExist(err) {
			return nil, xdm.NotFoundf("doc(%q): no file %s", uri, filepath.Join(dir, clean))
		}
		if err != nil {
			return nil, xdm.Errorf(xdm.ErrDoc, "doc(%q): %v", uri, err)
		}
		defer f.Close()
		d, err := xmldoc.Parse(f, uri)
		if err != nil {
			return nil, err
		}
		cache[uri] = d
		return d, nil
	}
}

// Hint applies the §3.2 distributivity-hint rewriting to every fixpoint
// body in the query: each body e becomes `for $y in $x return e[$y/$x]`,
// which rule FOR2 certifies. The caller asserts the bodies are in fact
// distributive — the rewrite changes the meaning of non-distributive ones.
func (q *Query) Hint() *Query {
	rewrite := func(e ast.Expr) ast.Expr {
		out := rewriteFixpoints(e)
		return out
	}
	m := &ast.Module{Vars: q.module.Vars}
	for _, f := range q.module.Funcs {
		nf := *f
		nf.Body = rewrite(f.Body)
		m.Funcs = append(m.Funcs, &nf)
	}
	m.Body = rewrite(q.module.Body)
	return &Query{src: ast.FormatModule(m), module: m}
}

func rewriteFixpoints(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if fp, ok := e.(*ast.Fixpoint); ok {
		return &ast.Fixpoint{
			Var:  fp.Var,
			Seed: rewriteFixpoints(fp.Seed),
			Body: dist.Hint(rewriteFixpoints(fp.Body), fp.Var),
		}
	}
	// Generic structural rewrite via Substitute of a sentinel: simplest is
	// a manual walk over Children; reuse ast.Copy + in-place patch.
	cp := ast.Copy(e)
	patchChildren(cp)
	return cp
}

// patchChildren rewrites Fixpoint descendants of a freshly copied tree in
// place.
func patchChildren(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Seq:
		for i := range x.Items {
			x.Items[i] = rewriteFixpoints(x.Items[i])
		}
	case *ast.For:
		x.In = rewriteFixpoints(x.In)
		x.Body = rewriteFixpoints(x.Body)
	case *ast.Let:
		x.Value = rewriteFixpoints(x.Value)
		x.Body = rewriteFixpoints(x.Body)
	case *ast.Quantified:
		x.In = rewriteFixpoints(x.In)
		x.Cond = rewriteFixpoints(x.Cond)
	case *ast.If:
		x.Cond = rewriteFixpoints(x.Cond)
		x.Then = rewriteFixpoints(x.Then)
		x.Else = rewriteFixpoints(x.Else)
	case *ast.Binary:
		x.L = rewriteFixpoints(x.L)
		x.R = rewriteFixpoints(x.R)
	case *ast.Unary:
		x.E = rewriteFixpoints(x.E)
	case *ast.Slash:
		x.L = rewriteFixpoints(x.L)
		x.R = rewriteFixpoints(x.R)
	case *ast.Filter:
		x.E = rewriteFixpoints(x.E)
		for i := range x.Preds {
			x.Preds[i] = rewriteFixpoints(x.Preds[i])
		}
	case *ast.AxisStep:
		for i := range x.Preds {
			x.Preds[i] = rewriteFixpoints(x.Preds[i])
		}
	case *ast.FuncCall:
		for i := range x.Args {
			x.Args[i] = rewriteFixpoints(x.Args[i])
		}
	case *ast.TypeSwitch:
		x.Operand = rewriteFixpoints(x.Operand)
		for _, c := range x.Cases {
			c.Body = rewriteFixpoints(c.Body)
		}
		x.Default = rewriteFixpoints(x.Default)
	}
}

// Version identifies the library.
const Version = "1.0.0"
