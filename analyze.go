package ifpxq

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/algebra/opt"
	"repro/internal/obs"
	"repro/internal/xq/parser"
)

// AnalyzeReport is the outcome of Query.Analyze: the evaluation result plus
// everything the trace observed — pipeline phases, the optimized plan
// annotated with measured per-operator actuals (relational engine), and one
// span per fixpoint round at every site. Render formats it for humans.
type AnalyzeReport struct {
	// QueryID identifies this evaluation in logs and error messages.
	QueryID string
	Engine  Engine
	Opt     OptLevel
	// Phases are the recorded pipeline spans in capture order (parse,
	// compile, optimize, store-resolve, exec); names repeat when a phase
	// ran more than once (e.g. one store-resolve per document).
	Phases []obs.Phase
	// Plan is the executed relational plan, each operator annotated with
	// the optimizer's inferred properties and the measured actuals
	// (calls, rows in/out, self time, gathers, alloc estimate). Empty for
	// the interpreter engine, which has no plan stage.
	Plan string
	// Sites holds the per-round spans of every fixpoint site, in the
	// order the sites first executed.
	Sites []SiteReport
	// DroppedRounds counts round spans lost to the trace's ring capacity;
	// 0 means Sites is complete.
	DroppedRounds int64
	// Result is the evaluation result; on budget truncation it carries
	// the fixpoint stats collected so far and Analyze also returns the
	// typed budget error.
	Result *Result
	// TotalNs is the wall time of the traced evaluation.
	TotalNs int64
}

// SiteReport is one fixpoint site's per-round trace. A site that executes
// several times (a fixpoint under an outer for loop) contributes its rounds
// back-to-back, each execution restarting at round 0.
type SiteReport struct {
	Site   int
	Label  string
	Rounds []obs.Round
}

// Analyze is EXPLAIN ANALYZE: it runs the query exactly as Eval would —
// same engines, same budget and error contract — while tracing every phase,
// per-operator actuals (relational engine), and per-round fixpoint spans.
// If opts.Trace is nil a fresh trace with a generated query ID is used.
// Budget truncations return the partial report alongside the typed error;
// any other error returns a nil report.
func (q *Query) Analyze(opts Options) (*AnalyzeReport, error) {
	tr := opts.Trace
	if tr == nil {
		tr = obs.NewTrace(obs.NextQueryID())
		opts.Trace = tr
	}
	// Analyze measures the evaluation; serving a cached result would
	// leave nothing to measure. The plan cache stays live — a hit shows
	// up as the compile/optimize phases vanishing from the report.
	opts.ResultCache = nil
	// Parsing happened in Parse before the trace existed; re-parse the
	// source so the report covers the full pipeline. Queries compiled
	// from other front ends (ParseRegularXPath) skip the phase.
	t0 := tr.Now()
	if _, err := parser.Parse(q.src); err == nil {
		tr.AddPhase("parse", t0, tr.Now()-t0)
	}
	budget := opts.budget()
	if err := budget.CheckDeadline(); err != nil {
		return nil, err
	}
	docs, done := opts.resolver()
	defer done()
	if docs != nil {
		docs = tracedDocs(tr, docs)
	}
	rep := &AnalyzeReport{QueryID: tr.ID(), Engine: opts.Engine, Opt: opts.Opt}
	start := time.Now()
	var res *Result
	var evalErr error
	switch opts.Engine {
	case EngineRelational:
		prof := obs.NewPlanProfile()
		plan, _, err := q.relationalPlan(&opts)
		if err != nil {
			return nil, err
		}
		en := relationalEngine(plan, &opts, budget, docs, prof)
		res, evalErr = relationalResult(en)
		rep.Plan = algebra.ExplainWith(en.Plan().Root, analyzeAnnotator(en.Plan().Root, prof))
	default:
		res, evalErr = interpResult(q.newInterpEngine(&opts, budget, docs))
	}
	rep.TotalNs = time.Since(start).Nanoseconds()
	rep.Result = res
	rep.Phases = tr.Phases()
	rep.DroppedRounds = tr.Dropped()
	labels := tr.Sites()
	bySite := make([][]obs.Round, len(labels))
	for _, r := range tr.Rounds() {
		if r.Site >= 0 && r.Site < len(bySite) {
			bySite[r.Site] = append(bySite[r.Site], r)
		}
	}
	for i, label := range labels {
		rep.Sites = append(rep.Sites, SiteReport{Site: i, Label: label, Rounds: bySite[i]})
	}
	if evalErr != nil && res == nil {
		return nil, evalErr
	}
	return rep, evalErr
}

// analyzeAnnotator combines the optimizer's inferred per-node properties
// with the profile's measured actuals into one explain annotation hook.
func analyzeAnnotator(root *algebra.Node, prof *obs.PlanProfile) func(*algebra.Node) string {
	props := opt.Annotate(root)
	return func(n *algebra.Node) string {
		parts := make([]string, 0, 2)
		if p := props(n); p != "" {
			parts = append(parts, p)
		}
		if st, ok := prof.Stats(n); ok {
			parts = append(parts, fmt.Sprintf("calls=%d in=%d out=%d self=%s gathers=%d mem~%s",
				st.Calls, st.RowsIn, st.RowsOut, fmtNs(st.SelfNs), st.Gathers, fmtBytes(st.AllocBytes)))
		} else {
			parts = append(parts, "never executed")
		}
		return strings.Join(parts, " ")
	}
}

// maxRenderedRounds caps the per-site round listing in Render; later rounds
// are summarized in one elision line.
const maxRenderedRounds = 64

// Render formats the report: a phase breakdown, the annotated plan, and a
// per-round table for every fixpoint site. Durations use fmtNs, so golden
// tests can sanitize them with a single time-unit regex.
func (r *AnalyzeReport) Render() string {
	var b strings.Builder
	engine := "interp"
	if r.Engine == EngineRelational {
		engine = "rel"
	}
	level := "O1"
	if r.Opt == Opt0 {
		level = "O0"
	}
	fmt.Fprintf(&b, "-- explain analyze %s: engine=%s opt=%s total=%s --\n",
		r.QueryID, engine, level, fmtNs(r.TotalNs))
	// Merge repeated phases by name, keeping first-appearance order.
	var order []string
	merged := map[string]int64{}
	counts := map[string]int{}
	for _, p := range r.Phases {
		if _, ok := merged[p.Name]; !ok {
			order = append(order, p.Name)
		}
		merged[p.Name] += p.DurNs
		counts[p.Name]++
	}
	for _, name := range order {
		if counts[name] > 1 {
			fmt.Fprintf(&b, "phase %s: %s (%d spans)\n", name, fmtNs(merged[name]), counts[name])
		} else {
			fmt.Fprintf(&b, "phase %s: %s\n", name, fmtNs(merged[name]))
		}
	}
	if r.Plan != "" {
		b.WriteString("-- plan (optimized, annotated with actuals) --\n")
		b.WriteString(r.Plan)
		if !strings.HasSuffix(r.Plan, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, s := range r.Sites {
		var fed, growth, ns int64
		for _, rd := range s.Rounds {
			fed += rd.Fed
			growth += rd.Delta
			ns += rd.DurNs
		}
		fmt.Fprintf(&b, "fixpoint site %d (%s): %d rounds, fed %d rows, grew %d rows in %s\n",
			s.Site, s.Label, len(s.Rounds), fed, growth, fmtNs(ns))
		shown := s.Rounds
		elided := 0
		if len(shown) > maxRenderedRounds {
			elided = len(shown) - maxRenderedRounds
			shown = shown[:maxRenderedRounds]
		}
		for _, rd := range shown {
			fmt.Fprintf(&b, "  round %d: fed=%d delta=%d %s\n", rd.Round, rd.Fed, rd.Delta, fmtNs(rd.DurNs))
		}
		if elided > 0 {
			fmt.Fprintf(&b, "  ... %d more rounds\n", elided)
		}
	}
	if r.DroppedRounds > 0 {
		fmt.Fprintf(&b, "!! %d round spans dropped at trace capacity\n", r.DroppedRounds)
	}
	if r.Result != nil {
		fmt.Fprintf(&b, "result: %d items\n", r.Result.Count())
	}
	return b.String()
}

// fmtNs renders a nanosecond duration with a single unit suffix
// (ns/µs/ms/s), never time.Duration's compound forms, so one regex over the
// rendering sanitizes every duration.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
