package ifpxq

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xdm"
)

func nodeItem(d *xdm.Document) xdm.Item { return xdm.NewNode(d.Root()) }

const curriculumXML = `<!DOCTYPE curriculum [
<!ATTLIST course code ID #REQUIRED>
]>
<curriculum>
<course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
<course code="c2"><prerequisites/></course>
<course code="c3"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
<course code="c4"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
</curriculum>`

const q1 = `(with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse $x/id(./prerequisites/pre_code))/@code/string()`

func docs() DocResolver {
	return DocsFromStrings(map[string]string{"curriculum.xml": curriculumXML})
}

func TestPublicAPIBothEngines(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineInterpreter, EngineRelational} {
		for _, mode := range []Mode{ModeAuto, ModeNaive, ModeDelta} {
			res, err := q.Eval(Options{Engine: engine, Mode: mode, Docs: docs()})
			if err != nil {
				t.Fatalf("engine %d mode %d: %v", engine, mode, err)
			}
			if got := res.String(); got != "c2 c3 c4" {
				t.Errorf("engine %d mode %d: %q", engine, mode, got)
			}
			if res.Count() != 3 {
				t.Errorf("count = %d", res.Count())
			}
			if len(res.Fixpoints) != 1 {
				t.Fatalf("fixpoint stats missing")
			}
		}
	}
}

func TestAutoModePicksDeltaEverywhere(t *testing.T) {
	q := MustParse(q1)
	for _, engine := range []Engine{EngineInterpreter, EngineRelational} {
		res, err := q.Eval(Options{Engine: engine, Docs: docs()})
		if err != nil {
			t.Fatal(err)
		}
		fp := res.Fixpoints[0]
		if fp.Algorithm.String() != "Delta" || !fp.Distributive {
			t.Errorf("engine %d: auto picked %v (distributive=%v)", engine, fp.Algorithm, fp.Distributive)
		}
	}
}

func TestDistributivityReport(t *testing.T) {
	q := MustParse(q1)
	reps := q.Distributivity()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if !reps[0].Syntactic || !reps[0].Algebraic || !reps[0].AlgebraicExt {
		t.Errorf("Q1 should pass every check: %+v", reps[0])
	}
	// A non-distributive body fails both.
	q2 := MustParse(`with $x seeded by doc("curriculum.xml")/curriculum/course
recurse if (count($x) > 2) then $x/id(prerequisites/pre_code) else ()`)
	rep := q2.Distributivity()[0]
	if rep.Syntactic || rep.Algebraic {
		t.Errorf("count-guarded body wrongly certified: %+v", rep)
	}
}

func TestExplainPlan(t *testing.T) {
	q := MustParse(q1)
	plan, err := q.ExplainPlan()
	if err != nil {
		t.Fatal(err)
	}
	for _, needed := range []string{"mu", "recbase", "id[item]"} {
		if !strings.Contains(plan, needed) {
			t.Errorf("plan misses %q:\n%s", needed, plan)
		}
	}
}

func TestExplainRawAndOptimized(t *testing.T) {
	q := MustParse(q1)
	ex, err := q.Explain(OptDefault)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Raw == "" || ex.Optimized == "" {
		t.Fatalf("Explain should render both plans, got raw=%d optimized=%d bytes",
			len(ex.Raw), len(ex.Optimized))
	}
	total := func(ops map[string]int) int {
		n := 0
		for _, c := range ops {
			n += c
		}
		return n
	}
	if total(ex.OptimizedOps) >= total(ex.RawOps) {
		t.Errorf("optimizer did not shrink the plan: raw %d ops, optimized %d ops",
			total(ex.RawOps), total(ex.OptimizedOps))
	}
	at0, err := q.Explain(Opt0)
	if err != nil {
		t.Fatal(err)
	}
	if at0.Optimized != "" || at0.OptimizedOps != nil {
		t.Errorf("Opt0 explain should carry no optimized plan")
	}

	// The optimizer must not change what the query returns.
	r0, err := q.Eval(Options{Engine: EngineRelational, Docs: docs(), Opt: Opt0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := q.Eval(Options{Engine: EngineRelational, Docs: docs(), Opt: Opt1})
	if err != nil {
		t.Fatal(err)
	}
	if r0.String() != r1.String() {
		t.Errorf("Opt0 %q vs Opt1 %q", r0.String(), r1.String())
	}
}

func TestRegularXPathEntryPoint(t *testing.T) {
	q, err := ParseRegularXPath(`(curriculum/course)+`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDocument(curriculumXML, "curriculum.xml")
	if err != nil {
		t.Fatal(err)
	}
	item := nodeItem(d)
	res, err := q.Eval(Options{ContextItem: &item})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 4 {
		t.Errorf("course closure = %d, want 4", res.Count())
	}
}

func TestHintAPI(t *testing.T) {
	q := MustParse(`with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse if (count($x) >= 1) then $x/id(./prerequisites/pre_code) else ()`)
	if q.Distributivity()[0].Syntactic {
		t.Fatal("pre-hint body should not be certified")
	}
	h := q.Hint()
	if !h.Distributivity()[0].Syntactic {
		t.Errorf("hinted body not certified; source: %s", h.Source())
	}
	r1, err := q.Eval(Options{Docs: docs()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Eval(Options{Docs: docs()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() == "" || r1.Count() != r2.Count() {
		t.Errorf("hint changed the result: %q vs %q", r1.String(), r2.String())
	}
	if r2.Fixpoints[0].Algorithm.String() != "Delta" {
		t.Errorf("hinted query still runs %v", r2.Fixpoints[0].Algorithm)
	}
}

func TestDocsFromDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c.xml"), []byte(curriculumXML), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := EvalString(`count(doc("c.xml")/curriculum/course)`,
		Options{Docs: DocsFromDir(dir)})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "4" {
		t.Errorf("count = %s", res.String())
	}
	// path escape is rejected
	if _, err := EvalString(`doc("../../etc/passwd")`, Options{Docs: DocsFromDir(dir)}); err == nil {
		t.Errorf("directory escape not rejected")
	}
}

func TestStrictVsExtendedOption(t *testing.T) {
	// A body routing the recursion variable through the left side of
	// except: rejected strictly (Table 1), admitted by the extended rules.
	src := `with $x seeded by doc("curriculum.xml")/curriculum/course[@code = "c1"]
recurse $x/id(./prerequisites/pre_code) except doc("curriculum.xml")/curriculum/course[@code = "c2"]`
	q := MustParse(src)
	rep := q.Distributivity()[0]
	if rep.Algebraic {
		t.Errorf("strict check must reject except: %+v", rep)
	}
	if !rep.AlgebraicExt {
		t.Errorf("extended check should admit left-of-except: %+v", rep)
	}
	// Both modes still compute the same (x \ R is genuinely distributive).
	rs, err := q.Eval(Options{Engine: EngineRelational, Mode: ModeNaive, Docs: docs()})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := q.Eval(Options{Engine: EngineRelational, Mode: ModeDelta, Docs: docs()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Count() != rd.Count() {
		t.Errorf("naive %d vs delta %d on a distributive except-body", rs.Count(), rd.Count())
	}
}
